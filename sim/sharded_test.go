package sim

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"github.com/szte-dcs/tokenaccount/internal/rng"
)

// shardTrace records delivery events with their delivery times. Appends from
// different shard workers are serialized by the mutex; the recorded set is
// compared as a sorted-by-content trace or per-destination, never by global
// arrival order, which is not deterministic across worker interleavings.
type shardTrace struct {
	mu      sync.Mutex
	entries []shardEntry
}

type shardEntry struct {
	time     float64
	from, to int32
	word     uint64
}

func (s *shardTrace) Deliver(d Delivery) {
	s.mu.Lock()
	s.entries = append(s.entries, shardEntry{from: d.From, to: d.To, word: d.Word})
	s.mu.Unlock()
}

// timedSink stamps entries with the destination shard's local clock.
type timedSink struct {
	se *ShardedEngine
	shardTrace
}

func (s *timedSink) Deliver(d Delivery) {
	t := s.se.ShardNow(s.se.ShardOfNode(int(d.To)))
	s.mu.Lock()
	s.entries = append(s.entries, shardEntry{time: t, from: d.From, to: d.To, word: d.Word})
	s.mu.Unlock()
}

// perDestination groups a trace by destination node, preserving arrival
// order within each destination — the order protocol state actually observes.
func perDestination(entries []shardEntry) map[int32][]shardEntry {
	out := make(map[int32][]shardEntry)
	for _, e := range entries {
		out[e.to] = append(out[e.to], e)
	}
	return out
}

func evenOdd(n int) []int32 {
	shardOf := make([]int32, n)
	for i := range shardOf {
		shardOf[i] = int32(i % 2)
	}
	return shardOf
}

func TestNewShardedEngineValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  ShardedConfig
		want string
	}{
		{"zero shards", ShardedConfig{Shards: 0, ShardOf: []int32{0}, Lookahead: 1}, "Shards"},
		{"empty shardOf", ShardedConfig{Shards: 1, Lookahead: 1}, "ShardOf"},
		{"zero lookahead", ShardedConfig{Shards: 1, ShardOf: []int32{0}, Lookahead: 0}, "Lookahead"},
		{"out of range", ShardedConfig{Shards: 2, ShardOf: []int32{0, 2}, Lookahead: 1}, "outside"},
		{"negative", ShardedConfig{Shards: 2, ShardOf: []int32{0, -1}, Lookahead: 1}, "outside"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := NewShardedEngine(c.cfg); err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want containing %q", err, c.want)
			}
		})
	}
}

// randomTraffic drives a small randomized workload: every node repeatedly
// sends to a pseudo-random peer with a pseudo-random delay ≥ 1 (the
// lookahead). All randomness comes from per-node derived streams, so the
// traffic is identical regardless of sharding.
func randomTraffic(n int, seed uint64, schedule func(node int, phase float64, fn func() bool), send func(delay float64, d Delivery)) {
	for i := 0; i < n; i++ {
		i := i
		r := rng.New(rng.Derive(seed, uint64(i)))
		rounds := 0
		schedule(i, 0.1*float64(i%7), func() bool {
			to := int32(r.Intn(n))
			delay := 1 + 2*r.Float64()
			send(delay, Delivery{From: int32(i), To: to, Word: uint64(rounds)<<32 | uint64(i)})
			rounds++
			return rounds < 8
		})
	}
}

// TestShardedMatchesSequential runs the same randomized workload on a plain
// Engine and on sharded engines with 1, 2 and 4 shards and requires the
// per-destination delivery sequences to be identical: conservative windows
// may reorder causally independent deliveries globally, but what each node
// observes must not depend on sharding when every delivery time is distinct
// per destination (delays here are irrational-ish random draws, so ties
// effectively never happen).
func TestShardedMatchesSequential(t *testing.T) {
	const n, seed = 20, 42

	// Plain engine reference.
	ref := NewEngine()
	refSink := &shardTrace{}
	randomTraffic(n, seed,
		func(node int, phase float64, fn func() bool) { ref.Every(phase, 1, fn) },
		func(delay float64, d Delivery) { ref.ScheduleDelivery(delay, d, refSink) },
	)
	ref.RunUntil(50)
	want := perDestination(refSink.entries)

	for _, shards := range []int{1, 2, 4} {
		shardOf := make([]int32, n)
		for i := range shardOf {
			shardOf[i] = int32(i % shards)
		}
		se, err := NewShardedEngine(ShardedConfig{Shards: shards, ShardOf: shardOf, Lookahead: 1})
		if err != nil {
			t.Fatal(err)
		}
		sink := &shardTrace{}
		se.SetSink(sink)
		randomTraffic(n, seed,
			func(node int, phase float64, fn func() bool) { se.ShardEvery(int(shardOf[node]), phase, 1, fn) },
			se.Send,
		)
		se.RunUntil(50)
		se.Close()
		got := perDestination(sink.entries)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d: per-destination delivery sequences differ from the sequential engine", shards)
		}
	}
}

// shardedTrace runs the randomized workload on a fresh sharded engine and
// returns the full delivery trace stamped with destination-shard times,
// sorted per destination.
func shardedTrace(t *testing.T, n, shards int, seed uint64) map[int32][]shardEntry {
	t.Helper()
	shardOf := make([]int32, n)
	for i := range shardOf {
		shardOf[i] = int32(i % shards)
	}
	se, err := NewShardedEngine(ShardedConfig{Shards: shards, ShardOf: shardOf, Lookahead: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()
	sink := &timedSink{se: se}
	se.SetSink(sink)
	randomTraffic(n, seed,
		func(node int, phase float64, fn func() bool) { se.ShardEvery(int(shardOf[node]), phase, 1, fn) },
		se.Send,
	)
	se.RunUntil(50)
	return perDestination(sink.entries)
}

// TestShardedDeterminism runs the same workload twice per shard count and
// requires bit-identical traces, including delivery timestamps.
func TestShardedDeterminism(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		a := shardedTrace(t, 24, shards, 7)
		b := shardedTrace(t, 24, shards, 7)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("shards=%d: two runs of the same workload differ", shards)
		}
	}
}

// TestShardedCrossShardTiming requires cross-shard deliveries to arrive at
// exactly send-time + delay on the destination shard's clock — parking a
// message in an outbox across a barrier must never distort its timing.
func TestShardedCrossShardTiming(t *testing.T) {
	se, err := NewShardedEngine(ShardedConfig{Shards: 2, ShardOf: evenOdd(4), Lookahead: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()
	sink := &timedSink{se: se}
	se.SetSink(sink)
	// Node 0 (shard 0) sends to node 1 (shard 1) at t = 0.7 with delay 1.3:
	// due at exactly 2.0 even though the window ending at 1.0 barriers first.
	se.ShardSchedule(0, 0.7, func() {
		se.Send(1.3, Delivery{From: 0, To: 1, Word: 99})
	})
	se.RunUntil(10)
	if len(sink.entries) != 1 {
		t.Fatalf("got %d deliveries, want 1", len(sink.entries))
	}
	if e := sink.entries[0]; e.time != 2.0 || e.word != 99 {
		t.Fatalf("delivery at t=%v word=%d, want t=2.0 word=99", e.time, e.word)
	}
}

// TestShardedLookaheadViolationPanics requires Send to reject a cross-shard
// delay below the lookahead instead of silently corrupting causality.
func TestShardedLookaheadViolationPanics(t *testing.T) {
	se, err := NewShardedEngine(ShardedConfig{Shards: 2, ShardOf: evenOdd(4), Lookahead: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()
	se.SetSink(&shardTrace{})
	defer func() {
		if recover() == nil {
			t.Fatal("cross-shard Send below the lookahead did not panic")
		}
	}()
	se.Send(0.5, Delivery{From: 0, To: 1})
}

// TestShardedCoordinatorBarriers requires coordinator events to observe every
// shard synchronized to the event's own timestamp, and to run before shard
// events sharing it.
func TestShardedCoordinatorBarriers(t *testing.T) {
	se, err := NewShardedEngine(ShardedConfig{Shards: 2, ShardOf: evenOdd(4), Lookahead: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()
	se.SetSink(&shardTrace{})

	var mu sync.Mutex
	var order []string
	record := func(s string) { mu.Lock(); order = append(order, s); mu.Unlock() }

	// The lookahead (10) far exceeds the coordinator event spacing, so the
	// windows must be cut down to the coordinator times.
	se.Every(2, 2, func() bool {
		if now := se.Now(); se.ShardNow(0) != now || se.ShardNow(1) != now {
			t.Errorf("coordinator event at %v sees shard clocks %v/%v", now, se.ShardNow(0), se.ShardNow(1))
		}
		record(fmt.Sprintf("coord@%v", se.Now()))
		return se.Now() < 6
	})
	for s := 0; s < 2; s++ {
		s := s
		se.ShardEvery(s, 2, 2, func() bool {
			record(fmt.Sprintf("shard%d@%v", s, se.ShardNow(s)))
			return se.ShardNow(s) < 6
		})
	}
	se.RunUntil(8)

	// At every shared timestamp the coordinator entry must precede both shard
	// entries.
	for i, at := range []int{0, 3, 6} {
		tstamp := fmt.Sprintf("@%v", 2*(i+1))
		if !strings.HasPrefix(order[at], "coord") || !strings.HasSuffix(order[at], tstamp) {
			t.Fatalf("order[%d] = %q, want coord%s first (full order %v)", at, order[at], tstamp, order)
		}
	}
	if len(order) != 9 {
		t.Fatalf("got %d entries, want 9: %v", len(order), order)
	}
}

// TestShardedRepeatedRunUntil requires back-to-back horizons to behave like
// one long run, matching Engine.RunUntil's inclusive-horizon semantics.
func TestShardedRepeatedRunUntil(t *testing.T) {
	run := func(horizons ...float64) map[int32][]shardEntry {
		se, err := NewShardedEngine(ShardedConfig{Shards: 2, ShardOf: evenOdd(6), Lookahead: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer se.Close()
		sink := &timedSink{se: se}
		se.SetSink(sink)
		randomTraffic(6, 3,
			func(node int, phase float64, fn func() bool) { se.ShardEvery(node%2, phase, 1, fn) },
			se.Send,
		)
		for _, h := range horizons {
			se.RunUntil(h)
		}
		return perDestination(sink.entries)
	}
	want := run(50)
	if got := run(3, 7.5, 11, 50); !reflect.DeepEqual(got, want) {
		t.Fatal("split horizons produced a different trace than one long run")
	}
}

// TestShardedProcessedAndPending checks the event accounting across queues
// and outboxes.
func TestShardedProcessedAndPending(t *testing.T) {
	se, err := NewShardedEngine(ShardedConfig{Shards: 2, ShardOf: evenOdd(4), Lookahead: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()
	se.SetSink(&shardTrace{})
	se.ShardSchedule(0, 0.5, func() {
		se.Send(1.5, Delivery{From: 0, To: 1}) // cross-shard, parked in an outbox
		se.Send(0.1, Delivery{From: 0, To: 2}) // intra-shard
	})
	if se.Pending() != 1 {
		t.Fatalf("Pending before run = %d, want 1", se.Pending())
	}
	se.RunUntil(1) // the window [0,1) executes the closure and the intra-shard delivery
	if got := se.Processed(); got != 2 {
		t.Fatalf("Processed after first window = %d, want 2", got)
	}
	if se.Pending() != 1 {
		t.Fatalf("Pending with a parked cross-shard delivery = %d, want 1", se.Pending())
	}
	se.RunUntil(5)
	if got, pend := se.Processed(), se.Pending(); got != 3 || pend != 0 {
		t.Fatalf("after drain: Processed = %d, Pending = %d, want 3, 0", got, pend)
	}
}

// TestShardedClose requires Close to be idempotent and RunUntil to refuse a
// closed engine.
func TestShardedClose(t *testing.T) {
	se, err := NewShardedEngine(ShardedConfig{Shards: 2, ShardOf: evenOdd(4), Lookahead: 1})
	if err != nil {
		t.Fatal(err)
	}
	se.SetSink(&shardTrace{})
	se.RunUntil(1) // spin the workers up so Close has something to stop
	se.Close()
	se.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("RunUntil on a closed engine did not panic")
		}
	}()
	se.RunUntil(2)
}

// nullSink discards deliveries; the allocation guards must not measure the
// sink's own bookkeeping.
type nullSink struct{ n int }

func (s *nullSink) Deliver(Delivery) { s.n++ }

// TestShardedCrossShardAllocs locks in the zero-allocation property of the
// cross-shard delivery path: once the outboxes and queues have grown, a
// steady-state window cycle — send cross-shard, barrier, deposit, deliver —
// performs no heap allocations. One shard keeps the measurement on the
// calling goroutine (testing.AllocsPerRun cannot see other goroutines'
// allocations, so a multi-worker measurement would be vacuous).
func TestShardedCrossShardAllocs(t *testing.T) {
	se, err := NewShardedEngine(ShardedConfig{Shards: 1, ShardOf: []int32{0, 0}, Lookahead: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()
	sink := &nullSink{}
	se.SetSink(sink)

	// Cross-shard outboxes only exist between distinct shards; with one shard
	// everything is intra-shard, so exercise the outbox machinery directly:
	// ScheduleDeliveryAt + drain mirror what a 2-shard barrier does, on the
	// caller's goroutine.
	horizon := 0.0
	warm := func() {
		for i := 0; i < 64; i++ {
			se.Send(1.0+float64(i%7)*0.25, Delivery{From: 0, To: 1, Word: uint64(i)})
		}
		horizon += 10
		se.RunUntil(horizon)
	}
	warm() // grow queues and outboxes
	if avg := testing.AllocsPerRun(100, warm); avg != 0 {
		t.Fatalf("steady-state sharded delivery cycle allocates %v per window batch, want 0", avg)
	}
	if sink.n == 0 {
		t.Fatal("no deliveries reached the sink")
	}
}

// TestShardedOutboxAllocs measures the cross-shard outbox round trip itself
// with a 2-shard engine driven from the test goroutine: deliveries are
// parked and drained via the internal APIs RunUntil uses at barriers.
func TestShardedOutboxAllocs(t *testing.T) {
	se, err := NewShardedEngine(ShardedConfig{Shards: 2, ShardOf: evenOdd(4), Lookahead: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()
	sink := &nullSink{}
	se.SetSink(sink)

	warm := func() {
		for i := 0; i < 64; i++ {
			se.Send(1.0+float64(i%5)*0.5, Delivery{From: 0, To: 1, Word: uint64(i)})
		}
		se.drainOutboxes()
		se.engines[1].Run()
	}
	warm()
	if avg := testing.AllocsPerRun(100, warm); avg != 0 {
		t.Fatalf("cross-shard outbox round trip allocates %v per batch, want 0", avg)
	}
	if sink.n == 0 {
		t.Fatal("no deliveries reached the sink")
	}
}
