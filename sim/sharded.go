package sim

import (
	"fmt"
	"math"
	"sync"
)

// ShardedConfig parameterizes a sharded engine.
type ShardedConfig struct {
	// Shards is the number of worker shards (≥ 1). Each shard owns one
	// Engine and executes its nodes' events on its own goroutine.
	Shards int
	// ShardOf maps every node index to the shard that owns it. Values must
	// lie in [0, Shards). Its length fixes the node count.
	ShardOf []int32
	// Lookahead is the minimum delay of any cross-shard delivery (> 0).
	// Shards execute independently for windows of this length; a smaller
	// cross-shard delay would violate causality, so Send panics on one.
	Lookahead float64
	// Queue selects the event queue implementation backing every per-shard
	// engine and the coordinator queue (see QueueKind).
	Queue QueueKind
}

// outMsg is one cross-shard delivery parked in an outbox between windows:
// the absolute delivery time plus the delivery itself.
type outMsg struct {
	time float64
	d    Delivery
}

// ShardedEngine executes one simulation run across several shards under the
// conservative time-window protocol: every shard owns a private Engine with
// the events of its nodes, all shards execute in parallel up to a common
// window end no further than lookahead ahead of the last barrier, cross-shard
// deliveries travel through per-(src, dst) outboxes drained at the barrier,
// and a coordinator queue holds the run-global events (metric sampling,
// update injection, churn transitions), which execute only at barriers.
//
// Correctness rests on the lookahead bound: a cross-shard message sent at
// time t inside a window starting at w arrives at t+d ≥ w+lookahead, which
// is at or after the window end, so depositing it at the next barrier can
// never deliver it late. Intra-shard deliveries are unconstrained.
//
// Determinism: for a fixed (event content, shard count) the run is
// bit-for-bit reproducible. Shard execution is sequential within a shard;
// outboxes are drained in (dst, src) order with fresh destination sequence
// numbers; coordinator events run single-threaded at barriers, before any
// shard event sharing their timestamp. The schedule does not depend on
// goroutine timing — only on the event content itself.
//
// All scheduling methods (At, Schedule, Every, Send, Shard*) must be called
// either during assembly or from within executing events; RunUntil itself
// must be driven from a single goroutine.
type ShardedEngine struct {
	engines   []*Engine
	coord     *Engine
	shardOf   []int32
	lookahead float64
	sink      DeliverySink

	// outboxes is the flattened S×S matrix of cross-shard buffers, indexed
	// src*S+dst. Each buffer has exactly one writer (shard src's goroutine
	// during windows, the coordinator at barriers) and one reader (the
	// coordinator's drain); the window barrier orders the two, so plain
	// slices suffice and the steady state allocates nothing once grown.
	outboxes [][]outMsg

	work    []chan float64
	wg      sync.WaitGroup
	started bool
	closed  bool
}

// NewShardedEngine validates the configuration and builds the engine.
func NewShardedEngine(cfg ShardedConfig) (*ShardedEngine, error) {
	switch {
	case cfg.Shards < 1:
		return nil, fmt.Errorf("sim: ShardedConfig.Shards = %d, need ≥ 1", cfg.Shards)
	case len(cfg.ShardOf) == 0:
		return nil, fmt.Errorf("sim: ShardedConfig.ShardOf is empty")
	case cfg.Lookahead <= 0 || math.IsNaN(cfg.Lookahead) || math.IsInf(cfg.Lookahead, 0):
		return nil, fmt.Errorf("sim: ShardedConfig.Lookahead = %g, need > 0 and finite", cfg.Lookahead)
	}
	for i, s := range cfg.ShardOf {
		if s < 0 || int(s) >= cfg.Shards {
			return nil, fmt.Errorf("sim: ShardOf[%d] = %d outside [0, %d)", i, s, cfg.Shards)
		}
	}
	se := &ShardedEngine{
		engines:   make([]*Engine, cfg.Shards),
		coord:     NewEngineWithQueue(cfg.Queue),
		shardOf:   cfg.ShardOf,
		lookahead: cfg.Lookahead,
		outboxes:  make([][]outMsg, cfg.Shards*cfg.Shards),
	}
	for s := range se.engines {
		se.engines[s] = NewEngineWithQueue(cfg.Queue)
	}
	return se, nil
}

// SetSink installs the delivery sink every delivery event is handed to. It
// must be set before the first Send.
func (se *ShardedEngine) SetSink(sink DeliverySink) { se.sink = sink }

// NumShards returns the number of shards.
func (se *ShardedEngine) NumShards() int { return len(se.engines) }

// ShardOfNode returns the shard owning the given node.
func (se *ShardedEngine) ShardOfNode(node int) int { return int(se.shardOf[node]) }

// Now returns the coordinator's virtual time: the time of the last barrier.
// During a window, shard-local time (ShardNow) runs ahead of it.
func (se *ShardedEngine) Now() float64 { return se.coord.Now() }

// At schedules a run-global event at the given absolute time on the
// coordinator queue. Coordinator events execute single-threaded at window
// barriers, with every shard synchronized to their timestamp, so they may
// touch state of any shard.
func (se *ShardedEngine) At(t float64, fn func()) { se.coord.At(t, fn) }

// Schedule is At relative to the coordinator's current time.
func (se *ShardedEngine) Schedule(delay float64, fn func()) { se.coord.Schedule(delay, fn) }

// Every schedules a repeating run-global event on the coordinator queue
// (see Engine.Every).
func (se *ShardedEngine) Every(phase, interval float64, fn func() bool) {
	se.coord.Every(phase, interval, fn)
}

// ShardNow returns shard s's local virtual time: inside a window it runs up
// to lookahead ahead of the last barrier.
func (se *ShardedEngine) ShardNow(s int) float64 { return se.engines[s].Now() }

// ShardSchedule schedules fn on shard s's queue after delay of shard-local
// virtual time. The callback runs on the shard's goroutine and must only
// touch state owned by that shard.
func (se *ShardedEngine) ShardSchedule(s int, delay float64, fn func()) {
	se.engines[s].Schedule(delay, fn)
}

// ShardEvery schedules a repeating event on shard s's queue (see
// Engine.Every). The callback runs on the shard's goroutine and must only
// touch state owned by that shard.
func (se *ShardedEngine) ShardEvery(s int, phase, interval float64, fn func() bool) {
	se.engines[s].Every(phase, interval, fn)
}

// AtDelivery schedules a typed delivery event on the coordinator queue at
// absolute time t (see Engine.ScheduleDeliveryAt): like At, it executes
// single-threaded at a window barrier, but the event payload is stored
// inline instead of in a closure.
func (se *ShardedEngine) AtDelivery(t float64, d Delivery, sink DeliverySink) {
	se.coord.ScheduleDeliveryAt(t, d, sink)
}

// ShardAtDelivery schedules a typed delivery event on shard s's queue at
// absolute shard-local time t. The sink runs on the shard's goroutine and
// must only touch state owned by that shard.
func (se *ShardedEngine) ShardAtDelivery(s int, t float64, d Delivery, sink DeliverySink) {
	se.engines[s].ScheduleDeliveryAt(t, d, sink)
}

// Send schedules the delivery d after the given delay, routed by the shards
// of its endpoints: an intra-shard delivery goes straight into the owning
// shard's queue (the same zero-allocation path as Engine.ScheduleDelivery),
// a cross-shard one is parked in the (src, dst) outbox and deposited into
// the destination queue at the next barrier. The delay is measured from the
// source shard's local time — the shard's own goroutine during a window, the
// common barrier time in coordinator context — and a negative or NaN delay
// counts as zero. Cross-shard delays below the lookahead violate the
// conservative contract and panic.
func (se *ShardedEngine) Send(delay float64, d Delivery) {
	if delay < 0 || math.IsNaN(delay) {
		delay = 0
	}
	src, dst := se.shardOf[d.From], se.shardOf[d.To]
	if src == dst {
		se.engines[src].ScheduleDelivery(delay, d, se.sink)
		return
	}
	if delay < se.lookahead {
		panic(fmt.Sprintf("sim: cross-shard delivery %d→%d with delay %g below the lookahead %g",
			d.From, d.To, delay, se.lookahead))
	}
	ob := &se.outboxes[int(src)*len(se.engines)+int(dst)]
	*ob = append(*ob, outMsg{time: se.engines[src].Now() + delay, d: d})
}

// Processed returns the total number of executed events across all shards
// and the coordinator. It must not be called while a window is executing.
func (se *ShardedEngine) Processed() uint64 {
	total := se.coord.Processed()
	for _, e := range se.engines {
		total += e.Processed()
	}
	return total
}

// Pending returns the number of scheduled, not-yet-executed events,
// including deliveries parked in outboxes.
func (se *ShardedEngine) Pending() int {
	n := se.coord.Pending()
	for _, e := range se.engines {
		n += e.Pending()
	}
	for _, ob := range se.outboxes {
		n += len(ob)
	}
	return n
}

// RunUntil advances the run to the horizon under the window protocol:
// repeatedly drain the outboxes, execute due coordinator events, pick the
// next window end (bounded by the lookahead, the next coordinator event and
// the horizon), and execute all shards in parallel up to — exclusively — that
// end. Events at exactly the horizon execute in a final sequential sweep, so
// repeated calls with increasing horizons behave like one long run, matching
// Engine.RunUntil.
func (se *ShardedEngine) RunUntil(horizon float64) {
	if se.closed {
		panic("sim: RunUntil on a closed ShardedEngine")
	}
	for {
		t := se.coord.Now()
		se.drainOutboxes()
		se.coord.RunUntil(t)
		if t >= horizon {
			break
		}
		wEnd := t + se.lookahead
		if wEnd > horizon {
			wEnd = horizon
		}
		if next, ok := se.coord.NextTime(); ok && next < wEnd {
			wEnd = next
		}
		se.runWindow(wEnd)
		// No coordinator event lies in (t, wEnd), so this only advances the
		// coordinator clock to the barrier.
		se.coord.RunBefore(wEnd)
	}
	// All shards stand at the horizon with every due cross-shard delivery
	// deposited; the inclusive sweep runs the events at exactly the horizon.
	// Cross-shard sends they issue come due at horizon+lookahead at the
	// earliest and stay parked for the next call.
	for _, e := range se.engines {
		e.RunUntil(horizon)
	}
	se.drainOutboxes()
}

// runWindow executes every shard up to, exclusively, the window end.
func (se *ShardedEngine) runWindow(wEnd float64) {
	if len(se.engines) == 1 {
		se.engines[0].RunBefore(wEnd)
		return
	}
	if !se.started {
		se.start()
	}
	se.wg.Add(len(se.work))
	for _, ch := range se.work {
		ch <- wEnd
	}
	se.wg.Wait()
}

// start spawns the persistent shard workers. Each worker owns its shard's
// engine (and, transitively, the state of the nodes mapped to it) for the
// duration of every window; the channel send and WaitGroup establish the
// barrier ordering that lets coordinator events touch any shard in between.
func (se *ShardedEngine) start() {
	se.started = true
	se.work = make([]chan float64, len(se.engines))
	for s := range se.engines {
		ch := make(chan float64)
		se.work[s] = ch
		go func(e *Engine) {
			for wEnd := range ch {
				e.RunBefore(wEnd)
				se.wg.Done()
			}
		}(se.engines[s])
	}
}

// drainOutboxes deposits parked cross-shard deliveries into their
// destination queues. The (dst, src) iteration order is fixed, and entries
// within one outbox are in source execution order, so the destination
// sequence numbers — and with them all tie-breaks — are deterministic.
func (se *ShardedEngine) drainOutboxes() {
	s := len(se.engines)
	for dst := 0; dst < s; dst++ {
		e := se.engines[dst]
		for src := 0; src < s; src++ {
			ob := &se.outboxes[src*s+dst]
			for i := range *ob {
				m := &(*ob)[i]
				e.ScheduleDeliveryAt(m.time, m.d, se.sink)
				m.d.Box = nil // release boxed payloads while the slot idles
			}
			*ob = (*ob)[:0]
		}
	}
}

// Close terminates the shard workers. It must not be called while RunUntil
// is executing; the engine cannot run afterwards.
func (se *ShardedEngine) Close() {
	if se.closed {
		return
	}
	se.closed = true
	if se.started {
		for _, ch := range se.work {
			close(ch)
		}
	}
}
