package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 3 {
		t.Errorf("Now() = %v, want 3", e.Now())
	}
	if e.Processed() != 3 {
		t.Errorf("Processed() = %d, want 3", e.Processed())
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	if !sort.IntsAreSorted(order) {
		t.Errorf("same-time events ran out of scheduling order: %v", order)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []float64
	e.Schedule(1, func() {
		times = append(times, e.Now())
		e.Schedule(2, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Errorf("times = %v, want [1 3]", times)
	}
}

func TestNegativeDelayRunsNow(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(5, func() {
		e.Schedule(-10, func() { ran = true })
		if e.Pending() != 1 {
			t.Errorf("Pending = %d, want 1", e.Pending())
		}
	})
	e.Run()
	if !ran {
		t.Error("event with negative delay never ran")
	}
	if e.Now() != 5 {
		t.Errorf("Now() = %v, want 5 (negative delay clamps to now)", e.Now())
	}
}

func TestAtInPastClampsToNow(t *testing.T) {
	e := NewEngine()
	var at float64 = -1
	e.Schedule(10, func() {
		e.At(3, func() { at = e.Now() })
	})
	e.Run()
	if at != 10 {
		t.Errorf("past-scheduled event ran at %v, want 10", at)
	}
}

func TestRunUntilAdvancesTime(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Every(0.5, 1.0, func() bool { count++; return true })
	e.RunUntil(10)
	// Ticks at 0.5, 1.5, ..., 9.5.
	if count != 10 {
		t.Errorf("count = %d, want 10", count)
	}
	if e.Now() != 10 {
		t.Errorf("Now() = %v, want 10", e.Now())
	}
	e.RunUntil(20)
	if count != 20 {
		t.Errorf("count after second horizon = %d, want 20", count)
	}
}

func TestEveryStopsWhenCallbackReturnsFalse(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Every(0, 1, func() bool {
		count++
		return count < 5
	})
	e.Run()
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
}

func TestStopPreventsFurtherEvents(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Every(0, 1, func() bool {
		count++
		if count == 3 {
			e.Stop()
		}
		return true
	})
	e.RunUntil(100)
	if count != 3 {
		t.Errorf("count = %d, want 3", count)
	}
	if !e.Stopped() {
		t.Error("Stopped() = false")
	}
	if e.Pending() == 0 {
		t.Error("pending events should remain queued after Stop")
	}
}

func TestStepOnEmptyQueue(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Error("Step() on empty queue returned true")
	}
}

func TestPanicsOnBadArguments(t *testing.T) {
	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	e := NewEngine()
	assertPanics("Schedule nil", func() { e.Schedule(1, nil) })
	assertPanics("At nil", func() { e.At(1, nil) })
	assertPanics("Every nil", func() { e.Every(0, 1, nil) })
	assertPanics("Every zero interval", func() { e.Every(0, 0, func() bool { return false }) })
}

func TestQuickEventsRunInTimeOrder(t *testing.T) {
	f := func(delays []float64) bool {
		e := NewEngine()
		var executed []float64
		for _, d := range delays {
			if d < 0 {
				d = -d
			}
			if d > 1e9 {
				d = 1e9
			}
			e.Schedule(d, func() { executed = append(executed, e.Now()) })
		}
		e.Run()
		return sort.Float64sAreSorted(executed) && len(executed) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(float64(j%17), func() {})
		}
		e.Run()
	}
}

// TestZeroValueEngine guards the zero value's usability: sim.Engine{} must
// schedule and run events exactly like NewEngine() (the queue is initialized
// lazily).
func TestZeroValueEngine(t *testing.T) {
	var e Engine
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d on zero-value engine", e.Pending())
	}
	var got []int
	e.Schedule(2, func() { got = append(got, 2) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("events ran as %v", got)
	}
}
