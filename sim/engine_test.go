package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 3 {
		t.Errorf("Now() = %v, want 3", e.Now())
	}
	if e.Processed() != 3 {
		t.Errorf("Processed() = %d, want 3", e.Processed())
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	if !sort.IntsAreSorted(order) {
		t.Errorf("same-time events ran out of scheduling order: %v", order)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []float64
	e.Schedule(1, func() {
		times = append(times, e.Now())
		e.Schedule(2, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Errorf("times = %v, want [1 3]", times)
	}
}

func TestNegativeDelayRunsNow(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(5, func() {
		e.Schedule(-10, func() { ran = true })
		if e.Pending() != 1 {
			t.Errorf("Pending = %d, want 1", e.Pending())
		}
	})
	e.Run()
	if !ran {
		t.Error("event with negative delay never ran")
	}
	if e.Now() != 5 {
		t.Errorf("Now() = %v, want 5 (negative delay clamps to now)", e.Now())
	}
}

func TestAtInPastClampsToNow(t *testing.T) {
	e := NewEngine()
	var at float64 = -1
	e.Schedule(10, func() {
		e.At(3, func() { at = e.Now() })
	})
	e.Run()
	if at != 10 {
		t.Errorf("past-scheduled event ran at %v, want 10", at)
	}
}

func TestRunUntilAdvancesTime(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Every(0.5, 1.0, func() bool { count++; return true })
	e.RunUntil(10)
	// Ticks at 0.5, 1.5, ..., 9.5.
	if count != 10 {
		t.Errorf("count = %d, want 10", count)
	}
	if e.Now() != 10 {
		t.Errorf("Now() = %v, want 10", e.Now())
	}
	e.RunUntil(20)
	if count != 20 {
		t.Errorf("count after second horizon = %d, want 20", count)
	}
}

func TestEveryStopsWhenCallbackReturnsFalse(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Every(0, 1, func() bool {
		count++
		return count < 5
	})
	e.Run()
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
}

func TestStopPreventsFurtherEvents(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Every(0, 1, func() bool {
		count++
		if count == 3 {
			e.Stop()
		}
		return true
	})
	e.RunUntil(100)
	if count != 3 {
		t.Errorf("count = %d, want 3", count)
	}
	if !e.Stopped() {
		t.Error("Stopped() = false")
	}
	if e.Pending() == 0 {
		t.Error("pending events should remain queued after Stop")
	}
}

func TestStepOnEmptyQueue(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Error("Step() on empty queue returned true")
	}
}

func TestPanicsOnBadArguments(t *testing.T) {
	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	e := NewEngine()
	assertPanics("Schedule nil", func() { e.Schedule(1, nil) })
	assertPanics("At nil", func() { e.At(1, nil) })
	assertPanics("Every nil", func() { e.Every(0, 1, nil) })
	assertPanics("Every zero interval", func() { e.Every(0, 0, func() bool { return false }) })
}

func TestQuickEventsRunInTimeOrder(t *testing.T) {
	f := func(delays []float64) bool {
		e := NewEngine()
		var executed []float64
		for _, d := range delays {
			if d < 0 {
				d = -d
			}
			if d > 1e9 {
				d = 1e9
			}
			e.Schedule(d, func() { executed = append(executed, e.Now()) })
		}
		e.Run()
		return sort.Float64sAreSorted(executed) && len(executed) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(float64(j%17), func() {})
		}
		e.Run()
	}
}

// TestZeroValueEngine guards the zero value's usability: sim.Engine{} must
// schedule and run events exactly like NewEngine() (the queue is initialized
// lazily).
func TestZeroValueEngine(t *testing.T) {
	var e Engine
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d on zero-value engine", e.Pending())
	}
	var got []int
	e.Schedule(2, func() { got = append(got, 2) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("events ran as %v", got)
	}
}

// recordingSink collects delivered events together with the engine time at
// delivery.
type recordingSink struct {
	e   *Engine
	got []Delivery
	at  []float64
}

func (s *recordingSink) Deliver(d Delivery) {
	s.got = append(s.got, d)
	s.at = append(s.at, s.e.Now())
}

// TestScheduleDelivery checks the typed delivery path: the event fires at
// now+delay with virtual time advanced, the Delivery struct round-trips
// unchanged, and deliveries interleave with closure events in strict
// (time, seq) order.
func TestScheduleDelivery(t *testing.T) {
	e := NewEngine()
	sink := &recordingSink{e: e}
	var order []string
	e.Schedule(1, func() { order = append(order, "fn@1") })
	e.ScheduleDelivery(1, Delivery{From: 3, To: 4, Kind: 2, Word: 77, Box: "x"}, sink)
	e.Schedule(0.5, func() { order = append(order, "fn@0.5") })
	e.ScheduleDelivery(2, Delivery{From: 5, To: 6, Word: 88}, sink)
	e.Run()
	if len(sink.got) != 2 {
		t.Fatalf("delivered %d events, want 2", len(sink.got))
	}
	if d := sink.got[0]; d.From != 3 || d.To != 4 || d.Kind != 2 || d.Word != 77 || d.Box != "x" {
		t.Errorf("first delivery = %+v", d)
	}
	if sink.at[0] != 1 || sink.at[1] != 2 {
		t.Errorf("delivery times = %v, want [1 2]", sink.at)
	}
	// The closure at t=1 was scheduled before the delivery at t=1, so it
	// runs first (seq tie-break); both run after the t=0.5 closure.
	if len(order) != 2 || order[0] != "fn@0.5" || order[1] != "fn@1" {
		t.Errorf("closure order = %v", order)
	}
	if e.Processed() != 4 {
		t.Errorf("processed = %d, want 4", e.Processed())
	}
}

// TestScheduleDeliveryNegativeDelay mirrors Schedule's clamping: a negative
// or NaN delay delivers at the current time.
func TestScheduleDeliveryNegativeDelay(t *testing.T) {
	e := NewEngine()
	sink := &recordingSink{e: e}
	e.Schedule(5, func() {
		e.ScheduleDelivery(-1, Delivery{Word: 1}, sink)
		e.ScheduleDelivery(math.NaN(), Delivery{Word: 2}, sink)
	})
	e.Run()
	if len(sink.at) != 2 || sink.at[0] != 5 || sink.at[1] != 5 {
		t.Errorf("delivery times = %v, want [5 5]", sink.at)
	}
}

// TestScheduleDeliveryNilSinkPanics mirrors the nil-callback panics.
func TestScheduleDeliveryNilSinkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ScheduleDelivery(nil sink) did not panic")
		}
	}()
	NewEngine().ScheduleDelivery(1, Delivery{}, nil)
}

// TestScheduleDeliveryAllocs guards the zero-allocation claim at the engine
// level: scheduling and executing a word-encoded delivery allocates nothing
// once the slab has grown.
func TestScheduleDeliveryAllocs(t *testing.T) {
	e := NewEngine()
	sink := &recordingSink{e: e}
	e.ScheduleDelivery(1, Delivery{Word: 1}, sink)
	e.Run()
	sink.got, sink.at = sink.got[:0], sink.at[:0]
	allocs := testing.AllocsPerRun(1000, func() {
		e.ScheduleDelivery(1, Delivery{From: 1, To: 2, Kind: 3, Word: 4}, sink)
		e.Step()
		sink.got, sink.at = sink.got[:0], sink.at[:0]
	})
	if allocs != 0 {
		t.Errorf("ScheduleDelivery+Step allocates %.1f, want 0", allocs)
	}
}
