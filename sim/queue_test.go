package sim

import (
	"testing"

	"github.com/szte-dcs/tokenaccount/internal/rng"
)

// allQueueKinds lists every queue implementation; tests iterate it so a new
// kind is automatically covered by the equivalence suite.
var allQueueKinds = []QueueKind{QueueSlab, QueueHeap, QueueCalendar}

// TestQueueKindsAgree drives every queue implementation with an identical
// randomized workload of interleaved pushes and pops — closure events and
// typed delivery events alike — and requires them to produce the exact same
// event order, which is what makes the queue choice invisible to simulation
// results. The workload mixes continuous and heavily duplicated times (seq
// tie-breaks), bursts, and long idle jumps (the calendar queue's overflow
// path).
func TestQueueKindsAgree(t *testing.T) {
	queues := make([]queue, len(allQueueKinds))
	for i, kind := range allQueueKinds {
		queues[i] = newQueue(kind)
	}
	ref := queues[1] // QueueHeap is the reference
	src := rng.New(42)
	var seq uint64
	base := 0.0
	for op := 0; op < 30000; op++ {
		for i, q := range queues {
			if q.Len() != ref.Len() {
				t.Fatalf("op %d: lengths diverged: %s %d, ref %d", op, allQueueKinds[i], q.Len(), ref.Len())
			}
		}
		if ref.Len() == 0 || src.Float64() < 0.55 {
			seq++
			ev := event{time: base + src.Float64()*100, seq: seq, fn: func() {}}
			switch {
			case src.Float64() < 0.2:
				// Duplicate times exercise the seq tie-break.
				ev.time = base + float64(src.Intn(10))
			case src.Float64() < 0.1:
				// Occasional far-future event: lands beyond the calendar's
				// current year and must surface in order regardless.
				ev.time = base + 1e4 + src.Float64()*1e4
			}
			if src.Float64() < 0.5 {
				// Typed delivery events share the ordering key with closures.
				ev.fn = nil
				ev.sink = discardSink{}
				ev.d = Delivery{From: int32(seq % 7), To: int32(seq % 11), Word: seq}
			}
			for _, q := range queues {
				q.Push(ev)
			}
			continue
		}
		if src.Float64() < 0.05 {
			// Idle jump: advance the time base so new pushes leave the old
			// calendar year behind.
			base += 500
		}
		if src.Float64() < 0.3 {
			want := ref.Peek()
			for i, q := range queues {
				if got := q.Peek(); got.time != want.time || got.seq != want.seq {
					t.Fatalf("op %d: Peek diverged: %s (%v, %d), ref (%v, %d)",
						op, allQueueKinds[i], got.time, got.seq, want.time, want.seq)
				}
			}
			continue
		}
		want := ref.Pop()
		for i, q := range queues {
			if i == 1 {
				continue
			}
			got := q.Pop()
			if got.time != want.time || got.seq != want.seq {
				t.Fatalf("op %d: Pop diverged: %s (%v, %d), ref (%v, %d)",
					op, allQueueKinds[i], got.time, got.seq, want.time, want.seq)
			}
		}
	}
	for ref.Len() > 0 {
		want := ref.Pop()
		for i, q := range queues {
			if i == 1 {
				continue
			}
			got := q.Pop()
			if got.time != want.time || got.seq != want.seq {
				t.Fatalf("drain: Pop diverged: %s (%v, %d), ref (%v, %d)",
					allQueueKinds[i], got.time, got.seq, want.time, want.seq)
			}
		}
	}
	for i, q := range queues {
		if q.Len() != 0 {
			t.Fatalf("%s queue still holds %d events", allQueueKinds[i], q.Len())
		}
	}
}

type discardSink struct{}

func (discardSink) Deliver(Delivery) {}

// TestQueuePopsSortedOrder checks the (time, seq) total order directly.
func TestQueuePopsSortedOrder(t *testing.T) {
	for _, kind := range allQueueKinds {
		t.Run(kind.String(), func(t *testing.T) {
			q := newQueue(kind)
			src := rng.New(7)
			for i := 0; i < 5000; i++ {
				q.Push(event{time: float64(src.Intn(50)), seq: uint64(i), fn: func() {}})
			}
			prev := event{time: -1}
			for q.Len() > 0 {
				ev := q.Pop()
				if ev.time < prev.time || (ev.time == prev.time && ev.seq < prev.seq) {
					t.Fatalf("event (%v, %d) popped after (%v, %d)", ev.time, ev.seq, prev.time, prev.seq)
				}
				prev = ev
			}
		})
	}
}

// TestEnginesAgreeAcrossQueues runs the same self-scheduling workload on
// engines with different queues and compares the executed event traces. The
// workload interleaves closure events with typed deliveries so both event
// representations participate in the ordering.
func TestEnginesAgreeAcrossQueues(t *testing.T) {
	trace := func(kind QueueKind) []int {
		e := NewEngineWithQueue(kind)
		src := rng.New(3)
		var got []int
		id := 0
		sink := &traceSink{}
		var spawn func()
		spawn = func() {
			me := id
			id++
			got = append(got, me)
			if e.Processed() < 2000 {
				e.Schedule(src.Float64()*10, spawn)
				if src.Float64() < 0.4 {
					e.Schedule(src.Float64()*5, spawn)
				}
				if src.Float64() < 0.5 {
					e.ScheduleDelivery(src.Float64()*8, Delivery{Word: uint64(me)}, sink)
				}
			}
		}
		sink.got = &got
		for i := 0; i < 10; i++ {
			e.Schedule(src.Float64(), spawn)
		}
		e.RunUntil(1e6)
		return got
	}
	ref := trace(QueueHeap)
	for _, kind := range []QueueKind{QueueSlab, QueueCalendar} {
		t.Run(kind.String(), func(t *testing.T) {
			got := trace(kind)
			if len(got) != len(ref) {
				t.Fatalf("trace lengths differ: %s %d, ref %d", kind, len(got), len(ref))
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("traces diverge at event %d: %s %d, ref %d", i, kind, got[i], ref[i])
				}
			}
		})
	}
}

// traceSink records delivered words as negative entries in the shared trace,
// distinguishing deliveries from closure executions.
type traceSink struct {
	got *[]int
}

func (s *traceSink) Deliver(d Delivery) { *s.got = append(*s.got, -1-int(d.Word)) }

// TestSlabQueueRecyclesSlots checks that the slab's high-water mark tracks
// pending events rather than total throughput: pushing and popping many more
// events than are ever simultaneously pending must not grow the slab.
func TestSlabQueueRecyclesSlots(t *testing.T) {
	q := &slabQueue{}
	for i := 0; i < 100; i++ {
		q.Push(event{time: float64(i), seq: uint64(i), fn: func() {}})
	}
	for round := 0; round < 1000; round++ {
		ev := q.Pop()
		ev.time += 100
		ev.seq += 100
		q.Push(ev)
	}
	if len(q.slab) != 100 {
		t.Fatalf("slab grew to %d slots for 100 pending events", len(q.slab))
	}
}

// TestCalendarQueueSteadyStateAllocs checks the calendar queue's hot path:
// once the structure has grown to the workload's high-water mark, a
// push/pop cycle allocates nothing.
func TestCalendarQueueSteadyStateAllocs(t *testing.T) {
	q := &calendarQueue{}
	src := rng.New(11)
	seq := uint64(0)
	for i := 0; i < 4096; i++ {
		seq++
		q.Push(event{time: src.Float64() * 100, seq: seq, fn: nil, sink: discardSink{}})
	}
	// Warm up: cycle enough events for resizes and bucket growth to settle.
	for i := 0; i < 20000; i++ {
		ev := q.Pop()
		seq++
		ev.seq = seq
		ev.time += src.Float64() * 100
		q.Push(ev)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		ev := q.Pop()
		seq++
		ev.seq = seq
		ev.time += src.Float64() * 100
		q.Push(ev)
	})
	if allocs != 0 {
		t.Errorf("calendar queue steady state allocates %.1f per push/pop cycle, want 0", allocs)
	}
}

// TestCalendarQueueShrinkMatchesSlab exercises the calendar queue's shrink
// path, which the self-scheduling simulation workloads never reach (their
// pending population only grows to a high-water mark): repeated grow/drain
// cycles force the bucket ring through its halving resizes — interleaved
// with pushes, so redistribution happens on a live mix of old and new days —
// while every Pop and interleaved Peek is cross-checked against the slab
// queue. The cycle count and drain ratio are chosen so the ring demonstrably
// both grows well past the minimum and halves back down multiple times.
func TestCalendarQueueShrinkMatchesSlab(t *testing.T) {
	cal := &calendarQueue{}
	ref := newQueue(QueueSlab)
	src := rng.New(23)
	var seq uint64
	base := 0.0
	maxBuckets, shrinks, prevBuckets := 0, 0, 0

	observe := func() {
		if n := len(cal.buckets); n > 0 {
			if n > maxBuckets {
				maxBuckets = n
			}
			if prevBuckets > 0 && n < prevBuckets {
				shrinks++
			}
			prevBuckets = n
		}
	}
	push := func() {
		seq++
		ev := event{time: base + src.Float64()*300, seq: seq, fn: func() {}}
		if src.Float64() < 0.15 {
			// Duplicate-time bursts keep the seq tie-break involved in the
			// redistribution ordering.
			ev.time = base + float64(src.Intn(20))
		}
		cal.Push(ev)
		ref.Push(ev)
		observe()
	}
	popCompare := func(op string) {
		want := ref.Pop()
		got := cal.Pop()
		observe()
		if got.time != want.time || got.seq != want.seq {
			t.Fatalf("%s: Pop diverged: calendar (%v, %d), slab (%v, %d)",
				op, got.time, got.seq, want.time, want.seq)
		}
	}

	for cycle := 0; cycle < 5; cycle++ {
		// Grow the pending population so the ring doubles repeatedly.
		for ref.Len() < 3000 {
			push()
		}
		// Drain-heavy phase: mostly pops with pushes sprinkled in, walking
		// the population down through every halving threshold.
		for ref.Len() > 8 {
			if src.Float64() < 0.1 {
				push()
				continue
			}
			if src.Float64() < 0.1 {
				w, g := ref.Peek(), cal.Peek()
				if g.time != w.time || g.seq != w.seq {
					t.Fatalf("cycle %d: Peek diverged: calendar (%v, %d), slab (%v, %d)",
						cycle, g.time, g.seq, w.time, w.seq)
				}
			}
			popCompare("drain")
		}
		// Advance the time base between cycles so regrowth lands in fresh
		// calendar days and the width re-estimation sees new gaps.
		base += 1000
	}
	for ref.Len() > 0 {
		popCompare("final drain")
	}
	if cal.Len() != 0 {
		t.Fatalf("calendar queue still holds %d events", cal.Len())
	}
	if maxBuckets < 8*minCalBuckets {
		t.Errorf("bucket ring only grew to %d buckets; the workload should force repeated doublings", maxBuckets)
	}
	if shrinks < 5 {
		t.Errorf("only %d halving resizes observed; the drain phases should force repeated shrinks", shrinks)
	}
	if len(cal.buckets) != minCalBuckets {
		t.Errorf("drained ring holds %d buckets, want the minimum %d", len(cal.buckets), minCalBuckets)
	}
}

// TestParseQueueKind checks the flag-facing name resolution.
func TestParseQueueKind(t *testing.T) {
	for name, want := range map[string]QueueKind{
		"":         QueueSlab,
		"slab":     QueueSlab,
		"heap":     QueueHeap,
		" Heap ":   QueueHeap,
		"calendar": QueueCalendar,
	} {
		got, err := ParseQueueKind(name)
		if err != nil || got != want {
			t.Errorf("ParseQueueKind(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseQueueKind("bogus"); err == nil {
		t.Error("ParseQueueKind(bogus) succeeded")
	}
}
