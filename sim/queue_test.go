package sim

import (
	"testing"

	"github.com/szte-dcs/tokenaccount/internal/rng"
)

// TestQueueKindsAgree drives both queue implementations with an identical
// randomized workload of interleaved pushes and pops and requires them to
// produce the exact same event order, which is what makes the queue choice
// invisible to simulation results.
func TestQueueKindsAgree(t *testing.T) {
	slab, ref := newQueue(QueueSlab), newQueue(QueueHeap)
	src := rng.New(42)
	var seq uint64
	for op := 0; op < 20000; op++ {
		if slab.Len() != ref.Len() {
			t.Fatalf("op %d: lengths diverged: slab %d, ref %d", op, slab.Len(), ref.Len())
		}
		if slab.Len() == 0 || src.Float64() < 0.55 {
			seq++
			ev := event{time: src.Float64() * 100, seq: seq, fn: func() {}}
			// Duplicate times exercise the seq tie-break.
			if src.Float64() < 0.2 {
				ev.time = float64(src.Intn(10))
			}
			slab.Push(ev)
			ref.Push(ev)
			continue
		}
		if src.Float64() < 0.3 {
			a, b := slab.Peek(), ref.Peek()
			if a.time != b.time || a.seq != b.seq {
				t.Fatalf("op %d: Peek diverged: slab (%v, %d), ref (%v, %d)", op, a.time, a.seq, b.time, b.seq)
			}
		}
		a, b := slab.Pop(), ref.Pop()
		if a.time != b.time || a.seq != b.seq {
			t.Fatalf("op %d: Pop diverged: slab (%v, %d), ref (%v, %d)", op, a.time, a.seq, b.time, b.seq)
		}
	}
	for slab.Len() > 0 {
		a, b := slab.Pop(), ref.Pop()
		if a.time != b.time || a.seq != b.seq {
			t.Fatalf("drain: Pop diverged: slab (%v, %d), ref (%v, %d)", a.time, a.seq, b.time, b.seq)
		}
	}
	if ref.Len() != 0 {
		t.Fatalf("reference queue still holds %d events", ref.Len())
	}
}

// TestQueuePopsSortedOrder checks the (time, seq) total order directly.
func TestQueuePopsSortedOrder(t *testing.T) {
	for _, kind := range []QueueKind{QueueSlab, QueueHeap} {
		t.Run(kind.String(), func(t *testing.T) {
			q := newQueue(kind)
			src := rng.New(7)
			for i := 0; i < 5000; i++ {
				q.Push(event{time: float64(src.Intn(50)), seq: uint64(i), fn: func() {}})
			}
			prev := event{time: -1}
			for q.Len() > 0 {
				ev := q.Pop()
				if ev.time < prev.time || (ev.time == prev.time && ev.seq < prev.seq) {
					t.Fatalf("event (%v, %d) popped after (%v, %d)", ev.time, ev.seq, prev.time, prev.seq)
				}
				prev = ev
			}
		})
	}
}

// TestEnginesAgreeAcrossQueues runs the same self-scheduling workload on
// engines with different queues and compares the executed event traces.
func TestEnginesAgreeAcrossQueues(t *testing.T) {
	trace := func(kind QueueKind) []int {
		e := NewEngineWithQueue(kind)
		src := rng.New(3)
		var got []int
		id := 0
		var spawn func()
		spawn = func() {
			me := id
			id++
			got = append(got, me)
			if e.Processed() < 2000 {
				e.Schedule(src.Float64()*10, spawn)
				if src.Float64() < 0.4 {
					e.Schedule(src.Float64()*5, spawn)
				}
			}
		}
		for i := 0; i < 10; i++ {
			e.Schedule(src.Float64(), spawn)
		}
		e.RunUntil(1e6)
		return got
	}
	slab, ref := trace(QueueSlab), trace(QueueHeap)
	if len(slab) != len(ref) {
		t.Fatalf("trace lengths differ: slab %d, ref %d", len(slab), len(ref))
	}
	for i := range slab {
		if slab[i] != ref[i] {
			t.Fatalf("traces diverge at event %d: slab %d, ref %d", i, slab[i], ref[i])
		}
	}
}

// TestSlabQueueRecyclesSlots checks that the slab's high-water mark tracks
// pending events rather than total throughput: pushing and popping many more
// events than are ever simultaneously pending must not grow the slab.
func TestSlabQueueRecyclesSlots(t *testing.T) {
	q := &slabQueue{}
	for i := 0; i < 100; i++ {
		q.Push(event{time: float64(i), seq: uint64(i), fn: func() {}})
	}
	for round := 0; round < 1000; round++ {
		ev := q.Pop()
		ev.time += 100
		ev.seq += 100
		q.Push(ev)
	}
	if len(q.slab) != 100 {
		t.Fatalf("slab grew to %d slots for 100 pending events", len(q.slab))
	}
}
