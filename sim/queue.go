package sim

import (
	"container/heap"
	"fmt"
	"strings"
)

// queue is the priority-queue contract the engine schedules through: a
// min-queue over (time, seq) with strict total order (seq is unique), so any
// correct implementation pops events in exactly the same order and the
// simulation stays deterministic regardless of the queue chosen.
type queue interface {
	// Len returns the number of queued events.
	Len() int
	// Push inserts an event.
	Push(ev event)
	// Peek returns the minimum event without removing it. It must only be
	// called when Len() > 0.
	Peek() event
	// Pop removes and returns the minimum event. It must only be called when
	// Len() > 0.
	Pop() event
}

// QueueKind selects the event queue implementation backing an Engine. All
// kinds implement the same (time, seq) total order, so they are
// interchangeable without affecting results; they differ only in constant
// factors and allocation behaviour (see DESIGN.md).
type QueueKind int

const (
	// QueueSlab is the default: a 4-ary implicit heap of indices into a
	// reusable event slab. Events are never boxed into interfaces and popped
	// slots are recycled through a free list, so the steady-state hot path
	// (Schedule/Step) allocates nothing.
	QueueSlab QueueKind = iota
	// QueueHeap is the reference implementation on container/heap. Each
	// Push/Pop boxes the event into an interface value, costing one heap
	// allocation per operation; it is kept for differential testing and as
	// the baseline of the scheduler benchmarks.
	QueueHeap
	// QueueCalendar is a calendar queue (Brown 1988) tuned for the
	// simulator's two dominant event classes — fixed-Δ periodic ticks and
	// fixed-transfer-delay deliveries — whose inter-event gaps are almost
	// constant, the regime where bucketed O(1) access beats a heap's
	// O(log n) sifts. Like the slab heap, its steady state allocates
	// nothing; see DESIGN.md for the bucket/overflow design.
	QueueCalendar
)

// String returns the queue kind name.
func (k QueueKind) String() string {
	switch k {
	case QueueSlab:
		return "slab"
	case QueueHeap:
		return "container-heap"
	case QueueCalendar:
		return "calendar"
	default:
		return "queue(?)"
	}
}

// ParseQueueKind resolves a queue kind name as used by command-line flags
// (e.g. tokensim -queue=calendar). The empty string means the engine default
// (QueueSlab); note that the experiment layer's sim runtime overrides that
// default with the calendar queue.
func ParseQueueKind(name string) (QueueKind, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "slab":
		return QueueSlab, nil
	case "heap", "container-heap":
		return QueueHeap, nil
	case "calendar":
		return QueueCalendar, nil
	default:
		return 0, fmt.Errorf("sim: unknown queue kind %q (want slab, heap or calendar)", name)
	}
}

func newQueue(kind QueueKind) queue {
	switch kind {
	case QueueHeap:
		return &heapQueue{}
	case QueueCalendar:
		return &calendarQueue{}
	default:
		return &slabQueue{}
	}
}

// slabQueue is a low-allocation event queue: the events live in a slab that
// is recycled through a free list, and the heap itself is a 4-ary implicit
// heap of int32 slab indices. Sift operations therefore move 4-byte indices
// rather than 24-byte event structs, and nothing escapes to the garbage
// collector on the Schedule/Step hot path once the slab has grown to the
// high-water mark of pending events.
type slabQueue struct {
	slab []event
	free []int32
	heap []int32
}

func (q *slabQueue) Len() int { return len(q.heap) }

func (q *slabQueue) less(a, b int32) bool {
	return q.slab[a].less(&q.slab[b])
}

func (q *slabQueue) Push(ev event) {
	var idx int32
	if n := len(q.free); n > 0 {
		idx = q.free[n-1]
		q.free = q.free[:n-1]
	} else {
		idx = int32(len(q.slab))
		q.slab = append(q.slab, event{})
	}
	q.slab[idx] = ev
	q.heap = append(q.heap, idx)
	q.siftUp(len(q.heap) - 1)
}

func (q *slabQueue) Peek() event { return q.slab[q.heap[0]] }

func (q *slabQueue) Pop() event {
	idx := q.heap[0]
	ev := q.slab[idx]
	q.slab[idx] = event{} // release closure/sink/payload to the GC while the slot waits in the free list
	q.free = append(q.free, idx)
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap = q.heap[:last]
	if last > 0 {
		q.siftDown(0)
	}
	return ev
}

func (q *slabQueue) siftUp(i int) {
	h := q.heap
	node := h[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !q.less(node, h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = node
}

func (q *slabQueue) siftDown(i int) {
	h := q.heap
	n := len(h)
	node := h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if q.less(h[c], h[best]) {
				best = c
			}
		}
		if !q.less(h[best], node) {
			break
		}
		h[i] = h[best]
		i = best
	}
	h[i] = node
}

// heapQueue adapts the stdlib container/heap to the queue interface.
type heapQueue struct {
	h eventHeap
}

func (q *heapQueue) Len() int      { return q.h.Len() }
func (q *heapQueue) Push(ev event) { heap.Push(&q.h, ev) }
func (q *heapQueue) Peek() event   { return q.h[0] }
func (q *heapQueue) Pop() event    { return heap.Pop(&q.h).(event) }

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool { return h[i].less(&h[j]) }

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = event{}
	*h = old[:n-1]
	return e
}
