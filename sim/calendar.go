package sim

import "sort"

// calendarQueue is a calendar queue (R. Brown, "Calendar Queues: A Fast
// O(1) Priority Queue Implementation for the Simulation Event Set Problem",
// CACM 1988) adapted to the simulator's strict (time, seq) total order.
//
// Events live in a recycled slab, exactly as in slabQueue, and the calendar
// structure only moves 4-byte slab indices — sorting, shifting and
// redistributing never copy event structs. Time is divided into "days" of a
// fixed width; day d holds the events whose time falls in
// [d·width, (d+1)·width). Days map onto a power-of-two ring of buckets
// (bucket = day mod #buckets), so one bucket interleaves events from days a
// whole "year" (#buckets days) apart. Each bucket is kept sorted by
// (time, seq) behind a consumed-prefix cursor; since every event of one day
// lands in the same bucket, the bucket head is the earliest event of the
// earliest day in that bucket, and the minimum of the whole queue is found
// by scanning at most one year of days forward from the day of the last
// popped event, falling back to a direct minimum over bucket heads when the
// year is empty (the "overflow" case: all pending events lie far in the
// future, e.g. after a quiet period). The located minimum is cached; a push
// keeps the cache unless the new event beats the cached minimum, and a pop
// keeps it while the next event in the bucket shares the popped event's
// day, so the scan position is only persisted when an event is actually
// popped — pushes below the cached minimum (which the engine produces after
// RunUntil parks virtual time at a horizon before the next event) can never
// be skipped.
//
// The structure is tuned for the simulator's event mix: fixed-Δ proactive
// ticks and fixed-transfer-delay deliveries produce near-constant
// inter-event gaps, so with width ≈ 3× the mean gap each bucket holds O(1)
// events and both Push and Pop touch a handful of slots, with no sift paths
// at all. Burst traffic (a reactive cascade delivering many messages at one
// instant) piles one day's bucket high; insertion stays O(1) amortized
// because same-time events carry increasing seq and append at the back, and
// the head cursor makes draining the burst O(1) per pop. The bucket count
// tracks the pending-event population (doubling above 2×, halving below ½×)
// and the width is re-estimated from a sample of queued events at each
// resize. Slab slots and bucket arrays are recycled, so once the structure
// has grown to the high-water mark of pending events the steady state
// allocates nothing.
type calendarQueue struct {
	slab []event // event storage; indices below point into it
	free []int32 // recycled slab slots

	buckets  []calBucket
	mask     int64   // len(buckets)-1; len is a power of two
	width    float64 // day width
	invWidth float64 // 1/width: day mapping multiplies instead of dividing
	count    int
	cur      int64 // day of the last popped event: the minimum scan starts here
	cacheB   int   // bucket holding the minimum, when cacheOK
	cacheOK  bool
	scratch  []float64 // width-estimation sample buffer, reused across resizes
}

// calBucket holds one bucket's pending events as slab indices: idx[head:]
// sorted ascending by (time, seq). The consumed prefix idx[:head] awaits the
// bucket's next reset, so popping the bucket minimum is O(1).
type calBucket struct {
	idx  []int32
	head int
}

const (
	minCalBuckets = 4
	// maxCalDay caps the day index so that extreme time/width ratios cannot
	// overflow the int64 conversion. Events past the cap share one far-future
	// day; they still live in a common bucket in sorted order, so the pop
	// order is unaffected.
	maxCalDay = int64(1) << 53
	// calWidthSample bounds the number of event times sampled for width
	// estimation at each resize.
	calWidthSample = 64
)

func (q *calendarQueue) Len() int { return q.count }

// day maps an event time to its day index under the current width.
func (q *calendarQueue) day(t float64) int64 {
	x := t * q.invWidth
	if x >= float64(maxCalDay) {
		return maxCalDay
	}
	return int64(x)
}

func (q *calendarQueue) Push(ev event) {
	if len(q.buckets) == 0 {
		q.buckets = make([]calBucket, minCalBuckets)
		q.mask = minCalBuckets - 1
		q.width, q.invWidth = 1, 1
	}
	var idx int32
	if n := len(q.free); n > 0 {
		idx = q.free[n-1]
		q.free = q.free[:n-1]
	} else {
		idx = int32(len(q.slab))
		q.slab = append(q.slab, event{})
	}
	q.slab[idx] = ev
	d := q.day(ev.time)
	if q.count == 0 || d < q.cur {
		q.cur = d
	}
	q.insert(d, idx)
	q.count++
	if q.cacheOK {
		// The cached minimum survives the push unless the new event beats
		// it; this keeps pop-after-push (the dominant interleaving in a
		// self-scheduling simulation) from re-scanning the year.
		if m := &q.buckets[q.cacheB]; ev.less(&q.slab[m.idx[m.head]]) {
			q.cacheOK = false
		}
	}
	if q.count > 2*len(q.buckets) {
		q.resize(2 * len(q.buckets))
	}
}

// insert places the slab index of an event into the bucket of day d, keeping
// the live region sorted. The backward scan makes the common cases — later
// events pushed later, and same-time bursts with increasing seq — an append.
func (q *calendarQueue) insert(d int64, idx int32) {
	ev := &q.slab[idx]
	b := &q.buckets[int(d&q.mask)]
	if b.head > 0 && len(b.idx) == cap(b.idx) {
		// Compact the consumed prefix away instead of growing the array.
		n := copy(b.idx, b.idx[b.head:])
		b.idx = b.idx[:n]
		b.head = 0
	}
	b.idx = append(b.idx, 0)
	i := len(b.idx) - 1
	for i > b.head && ev.less(&q.slab[b.idx[i-1]]) {
		b.idx[i] = b.idx[i-1]
		i--
	}
	b.idx[i] = idx
}

// locate returns the bucket holding the minimum event (its head) and caches
// the answer until it is invalidated. It must only be called when count > 0.
func (q *calendarQueue) locate() int {
	if q.cacheOK {
		return q.cacheB
	}
	// Scan one year of days forward from the last popped event's day. All
	// events of one day share a bucket, so a bucket head dated to the
	// scanned day is the earliest event overall.
	d := q.cur
	for i := 0; i < len(q.buckets); i++ {
		bi := int(d & q.mask)
		if b := &q.buckets[bi]; b.head < len(b.idx) && q.day(q.slab[b.idx[b.head]].time) == d {
			q.cacheB, q.cacheOK = bi, true
			return bi
		}
		d++
	}
	// Empty year: every pending event lies at least a year ahead. Fall back
	// to a direct minimum over the bucket heads (each head is its bucket's
	// minimum).
	best := -1
	for bi := range q.buckets {
		b := &q.buckets[bi]
		if b.head == len(b.idx) {
			continue
		}
		if best < 0 {
			best = bi
			continue
		}
		bb := &q.buckets[best]
		if q.slab[b.idx[b.head]].less(&q.slab[bb.idx[bb.head]]) {
			best = bi
		}
	}
	q.cacheB, q.cacheOK = best, true
	return best
}

func (q *calendarQueue) Peek() event {
	b := &q.buckets[q.locate()]
	return q.slab[b.idx[b.head]]
}

func (q *calendarQueue) Pop() event {
	bi := q.locate()
	b := &q.buckets[bi]
	idx := b.idx[b.head]
	ev := q.slab[idx]
	q.slab[idx] = event{} // release closure/sink/payload to the GC
	q.free = append(q.free, idx)
	b.head++
	q.count--
	d := q.day(ev.time)
	q.cur = d
	switch {
	case b.head == len(b.idx):
		b.idx = b.idx[:0]
		b.head = 0
		q.cacheOK = false
	case q.day(q.slab[b.idx[b.head]].time) == d:
		// The bucket's next event shares the popped event's day, so it is
		// the new global minimum (all events of one day live in one bucket
		// and no earlier day can hold events): draining a same-instant
		// burst never re-scans.
		q.cacheB, q.cacheOK = bi, true
	default:
		q.cacheOK = false
	}
	if q.count < len(q.buckets)/2 && len(q.buckets) > minCalBuckets {
		q.resize(len(q.buckets) / 2)
	}
	return ev
}

// resize rebuilds the ring with n buckets and a freshly estimated width,
// redistributing the queued slab indices (events themselves never move).
// Every bucket's index array is carved out of one shared backing slab,
// CSR-style, with per-bucket capacity at least the power of two covering its
// occupancy — no less headroom than growing each array by append would have
// left — so a resize costs O(1) allocations instead of one per bucket, and
// the post-resize tail of lazy one-bucket growths is no longer than under
// per-bucket allocation. A bucket that later outgrows its slice quietly
// appends into a private array. Resizing happens O(log n) times on the way
// to the high-water mark and then never again in steady state.
func (q *calendarQueue) resize(n int) {
	old := q.buckets
	q.width = q.estimateWidth(old)
	q.invWidth = 1 / q.width
	q.buckets = make([]calBucket, n)
	q.mask = int64(n - 1)
	// First pass: count the occupancy of every new bucket under the new
	// width, then lay the buckets out back to back with pow2 headroom.
	occ := make([]int32, n)
	for oi := range old {
		b := &old[oi]
		for _, idx := range b.idx[b.head:] {
			occ[int(q.day(q.slab[idx].time)&q.mask)]++
		}
	}
	total := 0
	for _, c := range occ {
		total += calBucketCap(c)
	}
	backing := make([]int32, total)
	pos := 0
	for i := range q.buckets {
		c := calBucketCap(occ[i])
		q.buckets[i].idx = backing[pos : pos : pos+c]
		pos += c
	}
	q.count = 0
	for oi := range old {
		b := &old[oi]
		for _, idx := range b.idx[b.head:] {
			d := q.day(q.slab[idx].time)
			if q.count == 0 || d < q.cur {
				q.cur = d
			}
			q.insert(d, idx)
			q.count++
		}
	}
	q.cacheOK = false
}

// calBucketCap is the backing capacity a bucket with the given occupancy
// receives at a resize: the power of two covering it, floored at 4 so even
// buckets empty at resize time absorb a few pushes before going private.
func calBucketCap(occ int32) int {
	c := 4
	for c < int(occ) {
		c *= 2
	}
	return c
}

// estimateWidth derives the bucket width from the gaps between a sample of
// queued event times: 3× the average gap, with gaps more than twice the raw
// average excluded from the second pass so a few large idle stretches cannot
// blow up the width (Brown's heuristic). Degenerate samples keep the current
// width.
func (q *calendarQueue) estimateWidth(old []calBucket) float64 {
	s := q.scratch[:0]
sample:
	for oi := range old {
		b := &old[oi]
		for _, idx := range b.idx[b.head:] {
			s = append(s, q.slab[idx].time)
			if len(s) >= calWidthSample {
				break sample
			}
		}
	}
	q.scratch = s
	if len(s) < 2 {
		return q.width
	}
	sort.Float64s(s)
	span := s[len(s)-1] - s[0]
	if !(span > 0) {
		return q.width // all sampled events at one instant
	}
	avg := span / float64(len(s)-1)
	sum, n := 0.0, 0
	for i := 1; i < len(s); i++ {
		if g := s[i] - s[i-1]; g <= 2*avg {
			sum += g
			n++
		}
	}
	if n > 0 && sum > 0 {
		return 3 * sum / float64(n)
	}
	return 3 * avg
}
