package workload

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec parses the colon-separated arrival-process grammar used by the
// -workload flag and the stream headers:
//
//	interval:<every>                          the paper's fixed drip
//	poisson:<rate>                            memoryless, rate arrivals/s
//	pareto-onoff:<rate>:<on>:<off>:<alpha>    self-similar bursts
//	diurnal:<period>:<amplitude>:<inner>      day/night cycle over any inner
//	flashcrowd:<t>:<peak>:<decay>:<inner>     rate spike at t over any inner
//	replay:<path>                             replay a recorded stream file
//
// Modulators nest: "diurnal:86400:0.8:pareto-onoff:2:30:90:1.5" is a valid
// spec. Every Spec's String method renders exactly this grammar, so
// ParseSpec(s.String()) reproduces s (replay excepted: it re-reads the file).
func ParseSpec(s string) (Spec, error) {
	kind, rest, _ := strings.Cut(strings.TrimSpace(s), ":")
	switch kind {
	case "interval":
		f, err := specFloats(kind, rest, 1)
		if err != nil {
			return nil, err
		}
		return NewInterval(f[0])
	case "poisson":
		f, err := specFloats(kind, rest, 1)
		if err != nil {
			return nil, err
		}
		return NewPoisson(f[0])
	case "pareto-onoff":
		f, err := specFloats(kind, rest, 4)
		if err != nil {
			return nil, err
		}
		return NewParetoOnOff(f[0], f[1], f[2], f[3])
	case "diurnal":
		f, inner, err := specPrefix(kind, rest, 2)
		if err != nil {
			return nil, err
		}
		return NewDiurnal(f[0], f[1], inner)
	case "flashcrowd":
		f, inner, err := specPrefix(kind, rest, 3)
		if err != nil {
			return nil, err
		}
		return NewFlashCrowd(f[0], f[1], f[2], inner)
	case "replay":
		if rest == "" {
			return nil, fmt.Errorf("workload: replay spec needs a file path: replay:<path>")
		}
		return NewReplay(rest)
	case "":
		return nil, fmt.Errorf("workload: empty arrival spec")
	default:
		return nil, fmt.Errorf("workload: unknown arrival process %q (known: interval, poisson, pareto-onoff, diurnal, flashcrowd, replay)", kind)
	}
}

// specFloats parses exactly n colon-separated float fields.
func specFloats(kind, rest string, n int) ([]float64, error) {
	parts := strings.Split(rest, ":")
	if rest == "" || len(parts) != n {
		return nil, fmt.Errorf("workload: %s spec needs %d parameter(s), got %q", kind, n, rest)
	}
	out := make([]float64, n)
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("workload: %s spec parameter %d: bad number %q", kind, i+1, p)
		}
		out[i] = f
	}
	return out, nil
}

// specPrefix parses n leading float fields and recursively parses what
// follows them as the inner spec of a modulator.
func specPrefix(kind, rest string, n int) ([]float64, Spec, error) {
	parts := strings.SplitN(rest, ":", n+1)
	if len(parts) != n+1 {
		return nil, nil, fmt.Errorf("workload: %s spec needs %d parameter(s) and an inner process, got %q", kind, n, rest)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		f, err := strconv.ParseFloat(strings.TrimSpace(parts[i]), 64)
		if err != nil {
			return nil, nil, fmt.Errorf("workload: %s spec parameter %d: bad number %q", kind, i+1, parts[i])
		}
		out[i] = f
	}
	inner, err := ParseSpec(parts[n])
	if err != nil {
		return nil, nil, fmt.Errorf("workload: %s inner process: %w", kind, err)
	}
	return out, inner, nil
}

// ParseOutages parses the availability-side scenario grammar
// "outage:<zones>:<p>:<duration>" given its colon-separated arguments (the
// fields after the "outage" name).
func ParseOutages(args []string) (Outages, error) {
	if len(args) != 3 {
		return Outages{}, fmt.Errorf("workload: outage scenario needs zones:p:duration, got %d argument(s)", len(args))
	}
	zones, err := strconv.Atoi(strings.TrimSpace(args[0]))
	if err != nil {
		return Outages{}, fmt.Errorf("workload: outage zones: bad integer %q", args[0])
	}
	p, err := strconv.ParseFloat(strings.TrimSpace(args[1]), 64)
	if err != nil {
		return Outages{}, fmt.Errorf("workload: outage probability: bad number %q", args[1])
	}
	d, err := strconv.ParseFloat(strings.TrimSpace(args[2]), 64)
	if err != nil {
		return Outages{}, fmt.Errorf("workload: outage duration: bad number %q", args[2])
	}
	return NewOutages(zones, p, d)
}
