// Package workload generates the traffic and availability patterns an
// experiment runs under. The paper evaluates the token account strategies
// under exactly one traffic pattern — one update injection every fixed
// InjectionInterval — and one availability pattern (the smartphone churn
// trace). This package generalizes both into composable, seed-deterministic
// generators so that large-scale runs can face workloads worth running at
// scale: bursty, diurnal, regionally correlated traffic instead of a
// constant drip.
//
// Two generator families live here:
//
//   - Arrival processes (Spec / Arrivals) produce the update injection
//     times: Interval (the paper's fixed drip), Poisson, self-similar
//     ParetoOnOff bursts, and the Diurnal and FlashCrowd modulators that
//     reshape any inner process by time-warping.
//   - Availability processes produce churn: Outages generates correlated
//     regional outages aligned with the netmodel zone hash and feeds the
//     ordinary trace.Trace, so the runtime's host lifecycle path is reused
//     unchanged.
//
// Determinism contract: a Spec is an immutable value; Spec.New(seed) builds
// a fresh sampler whose entire output is a pure function of the seed (leaf
// processes derive their private rng streams with rng.Derive, modulators add
// no randomness of their own), so for a fixed seed the sampled workload is
// bit-for-bit reproducible across runs, runtimes and shard counts. Sampling
// (Arrivals.Next) allocates nothing, preserving the simulator's
// zero-allocation hot path. Any generated workload can additionally be
// recorded to a Stream and replayed bit-identically (see stream.go), which
// keeps sweep rows comparable across engine changes.
package workload

import (
	"fmt"
	"math"

	"github.com/szte-dcs/tokenaccount/internal/rng"
)

// Arrivals is a stateful sampler producing one arrival process realization:
// each Next call returns the next arrival time in seconds, non-decreasing
// across calls. An exhausted process (a replayed stream past its end)
// returns +Inf forever. Next must not allocate. Samplers are not safe for
// concurrent use; build one per run with Spec.New.
type Arrivals interface {
	Next() float64
}

// Spec is an immutable description of an arrival process. Specs are plain
// value types comparable with ==, render their parseable form through
// String (ParseSpec(s.String()) reproduces the spec), and build independent
// samplers with New.
type Spec interface {
	// New builds a fresh sampler. The entire arrival sequence is a pure
	// function of seed; pass ArrivalSeed(runSeed) so workload randomness
	// stays decorrelated from the run's node, phase and network streams.
	New(seed uint64) Arrivals
	// String renders the spec in the colon-separated form ParseSpec accepts.
	String() string
}

// arrivalStream salts the experiment-seed derivation ("wkld" in ASCII) so
// workload randomness is independent of every runtime stream.
const arrivalStream uint64 = 0x776b6c64

// Per-family stream tags, so nested specs sharing one arrival seed still
// draw from decorrelated streams.
const (
	poissonStream uint64 = 0x706f6973 // "pois"
	onoffStream   uint64 = 0x6f6e6f66 // "onof"
	outageStream  uint64 = 0x6f757467 // "outg"
)

// ArrivalSeed derives the workload arrival seed of one run from the run's
// experiment seed. The experiment layer and cmd/tracegen both apply it, so a
// stream recorded with tracegen -seed S is bit-identical to the arrivals an
// experiment with seed S samples live.
func ArrivalSeed(runSeed uint64) uint64 { return rng.Derive(runSeed, arrivalStream) }

// Interval is the paper's traffic pattern: one arrival every Every seconds,
// at Every, 2·Every, 3·Every, ... It draws no randomness; the times
// accumulate by repeated addition, matching the runtime's Every loop
// bit-for-bit.
type Interval struct {
	Every float64
}

// NewInterval validates the spacing and returns the spec.
func NewInterval(every float64) (Interval, error) {
	if !(every > 0) || math.IsInf(every, 1) {
		return Interval{}, fmt.Errorf("workload: interval spacing = %g, need > 0 and finite", every)
	}
	return Interval{Every: every}, nil
}

// New implements Spec.
func (iv Interval) New(uint64) Arrivals { return &intervalArrivals{every: iv.Every} }

// String renders the spec in its parseable form.
func (iv Interval) String() string { return fmt.Sprintf("interval:%g", iv.Every) }

type intervalArrivals struct {
	t, every float64
}

func (a *intervalArrivals) Next() float64 {
	a.t += a.every
	return a.t
}

// Poisson is the memoryless arrival process with the given rate in arrivals
// per second: independent exponential inter-arrival gaps, the classic model
// for aggregate traffic from many independent sources.
type Poisson struct {
	Rate float64
}

// NewPoisson validates the rate and returns the spec.
func NewPoisson(rate float64) (Poisson, error) {
	if !(rate > 0) || math.IsInf(rate, 1) {
		return Poisson{}, fmt.Errorf("workload: poisson rate = %g, need > 0 and finite", rate)
	}
	return Poisson{Rate: rate}, nil
}

// New implements Spec.
func (p Poisson) New(seed uint64) Arrivals {
	return &poissonArrivals{src: rng.New(rng.Derive(seed, poissonStream)), mean: 1 / p.Rate}
}

// String renders the spec in its parseable form.
func (p Poisson) String() string { return fmt.Sprintf("poisson:%g", p.Rate) }

type poissonArrivals struct {
	src     *rng.Source
	t, mean float64
}

func (a *poissonArrivals) Next() float64 {
	a.t += a.src.ExpFloat64() * a.mean
	return a.t
}
