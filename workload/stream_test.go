package workload

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestStreamRoundTrip(t *testing.T) {
	for name, spec := range builtinSpecs(t) {
		t.Run(name, func(t *testing.T) {
			rec, err := Record(spec, 42, 7200)
			if err != nil {
				t.Fatal(err)
			}
			if len(rec.Times) == 0 {
				t.Fatal("recorded no arrivals over 7200 s")
			}
			var buf bytes.Buffer
			if err := rec.Write(&buf); err != nil {
				t.Fatal(err)
			}
			got, err := ReadStream(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if got.Spec != spec.String() || got.Seed != 42 || got.Duration != 7200 {
				t.Fatalf("metadata lost: %+v", got)
			}
			if len(got.Times) != len(rec.Times) {
				t.Fatalf("%d times read, %d recorded", len(got.Times), len(rec.Times))
			}
			for i := range rec.Times {
				if got.Times[i] != rec.Times[i] {
					t.Fatalf("time %d: %v read vs %v recorded (must be bit-exact)", i, got.Times[i], rec.Times[i])
				}
			}
		})
	}
}

func TestReplayMatchesLiveSampler(t *testing.T) {
	spec := builtinSpecs(t)["pareto-onoff"]
	rec, err := Record(spec, 13, 36000)
	if err != nil {
		t.Fatal(err)
	}
	live := spec.New(13)
	replayed := ReplayStream(rec, "mem").New(999) // seed must be ignored
	for i := range rec.Times {
		l, r := live.Next(), replayed.Next()
		if l != r {
			t.Fatalf("arrival %d: live %v vs replay %v", i, l, r)
		}
	}
	if got := replayed.Next(); !math.IsInf(got, 1) {
		t.Fatalf("exhausted replay returned %v, want +Inf", got)
	}
}

func TestReplayFromFile(t *testing.T) {
	spec := builtinSpecs(t)["flashcrowd"]
	rec, err := Record(spec, 5, 5000)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "crowd.stream")
	var buf bytes.Buffer
	if err := rec.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseSpec("replay:" + path)
	if err != nil {
		t.Fatal(err)
	}
	if got := parsed.String(); got != "replay:"+path {
		t.Fatalf("String() = %q", got)
	}
	a, b := spec.New(5), parsed.New(0)
	for i := range rec.Times {
		l, r := a.Next(), b.Next()
		if l != r {
			t.Fatalf("arrival %d: live %v vs file replay %v", i, l, r)
		}
	}
}

func TestReadStreamErrors(t *testing.T) {
	for name, in := range map[string]string{
		"empty":           "",
		"no-magic":        "a,1\n",
		"wrong-magic":     "# workload-stream v9\na,1\n",
		"bad-arrival":     "# workload-stream v1\na,abc\n",
		"negative":        "# workload-stream v1\na,-1\n",
		"nan":             "# workload-stream v1\na,NaN\n",
		"inf":             "# workload-stream v1\na,+Inf\n",
		"decreasing":      "# workload-stream v1\na,5\na,4\n",
		"unknown-record":  "# workload-stream v1\nb,5\n",
		"bad-seed":        "# workload-stream v1\n# seed=x\na,1\n",
		"bad-duration":    "# workload-stream v1\n# duration=x\na,1\n",
		"negative-durate": "# workload-stream v1\n# duration=-7\na,1\n",
	} {
		if s, err := ReadStream(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %d times", name, len(s.Times))
		}
	}
	// Free-form comments and blank lines are tolerated.
	s, err := ReadStream(strings.NewReader("# workload-stream v1\n\n# a note\n# spec=poisson:1\na,1\na,1\na,2.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Times) != 3 || s.Spec != "poisson:1" || s.Duration != 2.5 {
		t.Fatalf("parsed %+v", s)
	}
}

func TestRecordRejectsBadDuration(t *testing.T) {
	spec := builtinSpecs(t)["poisson"]
	for _, d := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := Record(spec, 1, d); err == nil {
			t.Errorf("Record with duration %v accepted", d)
		}
	}
}

// FuzzStreamRoundTrip is the replay-equivalence property test: any generated
// stream must survive Write → ReadStream bit-exactly, and ReadStream must
// never panic or accept a decreasing sequence from arbitrary input.
func FuzzStreamRoundTrip(f *testing.F) {
	f.Add(uint64(1), 0.5, 3600.0)
	f.Add(uint64(42), 10.0, 100.0)
	f.Add(uint64(0), 1e-3, 50000.0)
	f.Fuzz(func(t *testing.T, seed uint64, rate, duration float64) {
		if !(rate > 1e-6) || rate > 100 || !(duration > 1) || duration > 1e6 || rate*duration > 5e5 {
			t.Skip()
		}
		spec, err := NewPoisson(rate)
		if err != nil {
			t.Skip()
		}
		rec, err := Record(spec, seed, duration)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rec.Write(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadStream(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if got.Seed != rec.Seed || got.Duration != rec.Duration || got.Spec != rec.Spec {
			t.Fatalf("metadata lost: %+v vs %+v", got, rec)
		}
		if len(got.Times) != len(rec.Times) {
			t.Fatalf("%d vs %d times", len(got.Times), len(rec.Times))
		}
		for i := range rec.Times {
			if got.Times[i] != rec.Times[i] {
				t.Fatalf("time %d: %v vs %v", i, got.Times[i], rec.Times[i])
			}
		}
	})
}

// FuzzReadStream feeds arbitrary bytes to the parser: it must either fail
// cleanly or return a valid (non-decreasing, finite) stream.
func FuzzReadStream(f *testing.F) {
	f.Add("# workload-stream v1\na,1\na,2\n")
	f.Add("# workload-stream v1\n# spec=poisson:1\n# seed=3\n# duration=10\na,0.5\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ReadStream(strings.NewReader(in))
		if err != nil {
			return
		}
		prev := 0.0
		for i, tm := range s.Times {
			if tm < prev || math.IsNaN(tm) || math.IsInf(tm, 0) {
				t.Fatalf("accepted invalid time %v at %d after %v", tm, i, prev)
			}
			prev = tm
		}
	})
}
