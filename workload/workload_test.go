package workload

import (
	"math"
	"strings"
	"testing"
)

// sample collects the first n arrivals of a fresh sampler.
func sample(t *testing.T, s Spec, seed uint64, n int) []float64 {
	t.Helper()
	a := s.New(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = a.Next()
	}
	return out
}

func builtinSpecs(t *testing.T) map[string]Spec {
	t.Helper()
	iv, err := NewInterval(60)
	if err != nil {
		t.Fatal(err)
	}
	po, err := NewPoisson(0.5)
	if err != nil {
		t.Fatal(err)
	}
	oo, err := NewParetoOnOff(2, 30, 90, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	di, err := NewDiurnal(3600, 0.8, po)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := NewFlashCrowd(600, 10, 120, oo)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Spec{
		"interval":     iv,
		"poisson":      po,
		"pareto-onoff": oo,
		"diurnal":      di,
		"flashcrowd":   fc,
	}
}

func TestSpecsDeterministicAndMonotone(t *testing.T) {
	for name, spec := range builtinSpecs(t) {
		t.Run(name, func(t *testing.T) {
			a := sample(t, spec, 42, 2000)
			b := sample(t, spec, 42, 2000)
			prev := 0.0
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("arrival %d differs across identically-seeded samplers: %v vs %v", i, a[i], b[i])
				}
				if a[i] < prev {
					t.Fatalf("arrival %d = %v decreases below %v", i, a[i], prev)
				}
				if math.IsNaN(a[i]) || math.IsInf(a[i], 0) {
					t.Fatalf("arrival %d = %v, want finite", i, a[i])
				}
				prev = a[i]
			}
		})
	}
}

func TestRandomSpecsVaryWithSeed(t *testing.T) {
	for _, name := range []string{"poisson", "pareto-onoff", "diurnal", "flashcrowd"} {
		spec := builtinSpecs(t)[name]
		a := sample(t, spec, 1, 100)
		b := sample(t, spec, 2, 100)
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: seeds 1 and 2 produced identical streams", name)
		}
	}
}

func TestIntervalMatchesDrip(t *testing.T) {
	iv, _ := NewInterval(10)
	a := iv.New(7)
	want := 0.0
	for i := 0; i < 1000; i++ {
		want += 10 // the runtime Every loop accumulates by repeated addition
		if got := a.Next(); got != want {
			t.Fatalf("arrival %d = %v, want %v", i, got, want)
		}
	}
}

func TestPoissonRate(t *testing.T) {
	po, _ := NewPoisson(2)
	const n = 200000
	last := sample(t, po, 9, n)[n-1]
	rate := n / last
	if math.Abs(rate-2) > 0.05 {
		t.Fatalf("empirical rate %v, want ≈ 2", rate)
	}
}

func TestParetoOnOffLongRunRate(t *testing.T) {
	// Long-run arrival rate = Rate · OnMean / (OnMean + OffMean).
	oo, _ := NewParetoOnOff(4, 50, 150, 1.9)
	const n = 400000
	last := sample(t, oo, 3, n)[n-1]
	want := 4.0 * 50 / (50 + 150)
	rate := n / last
	if math.Abs(rate-want)/want > 0.15 {
		t.Fatalf("empirical long-run rate %v, want ≈ %v", rate, want)
	}
}

func TestParetoOnOffDegeneratesToPoissonRate(t *testing.T) {
	oo, _ := NewParetoOnOff(2, 30, 0, 1.5)
	const n = 100000
	last := sample(t, oo, 5, n)[n-1]
	rate := n / last
	if math.Abs(rate-2) > 0.1 {
		t.Fatalf("empirical rate %v with OffMean=0, want ≈ 2", rate)
	}
}

func TestParetoOnOffBurstier(t *testing.T) {
	// The index of dispersion of per-window counts must be far above the
	// Poisson value of 1 for a heavy-tailed ON/OFF source of equal mean rate.
	disp := func(s Spec) float64 {
		a := s.New(11)
		counts := make([]float64, 2000)
		win := 0
		for {
			t := a.Next()
			w := int(t / 100)
			if w >= len(counts) {
				break
			}
			counts[w]++
			win = w
		}
		counts = counts[:win]
		mean, m2 := 0.0, 0.0
		for _, c := range counts {
			mean += c
		}
		mean /= float64(len(counts))
		for _, c := range counts {
			m2 += (c - mean) * (c - mean)
		}
		return m2 / float64(len(counts)) / mean
	}
	po, _ := NewPoisson(1)
	oo, _ := NewParetoOnOff(4, 50, 150, 1.3) // same mean rate of 1
	dPo, dOo := disp(po), disp(oo)
	if dPo > 2 {
		t.Fatalf("poisson dispersion %v, want ≈ 1", dPo)
	}
	if dOo < 5*dPo {
		t.Fatalf("pareto-onoff dispersion %v not clearly above poisson %v", dOo, dPo)
	}
}

func TestWarpInvertsCumulativeProfile(t *testing.T) {
	po, _ := NewPoisson(0.2)
	for name, spec := range map[string]Spec{
		"diurnal":    Diurnal{Period: 3600, Amplitude: 0.9, Inner: po},
		"flashcrowd": FlashCrowd{At: 500, Peak: 15, Decay: 200, Inner: po},
	} {
		t.Run(name, func(t *testing.T) {
			inner := po.New(21)
			warped := spec.New(21).(*warpedArrivals)
			for i := 0; i < 5000; i++ {
				tau := inner.Next()
				tw := warped.Next()
				if got := warped.mod.cum(tw); math.Abs(got-tau) > 1e-7*math.Max(1, tau) {
					t.Fatalf("arrival %d: cum(%v) = %v, want inner time %v", i, tw, got, tau)
				}
			}
		})
	}
}

func TestDiurnalZeroAmplitudeIsIdentity(t *testing.T) {
	po, _ := NewPoisson(1)
	di, _ := NewDiurnal(3600, 0, po)
	inner := po.New(4)
	warped := di.New(4)
	for i := 0; i < 2000; i++ {
		a, b := inner.Next(), warped.Next()
		if math.Abs(a-b) > 1e-7*math.Max(1, a) {
			t.Fatalf("arrival %d: warped %v deviates from inner %v at amplitude 0", i, b, a)
		}
	}
}

func TestFlashCrowdConcentratesArrivals(t *testing.T) {
	po, _ := NewPoisson(0.5)
	fc, _ := NewFlashCrowd(2000, 20, 300, po)
	a := fc.New(17)
	before, during := 0, 0 // [1400, 1700) vs [2000, 2300)
	for {
		t := a.Next()
		if t >= 2300 {
			break
		}
		if t >= 1400 && t < 1700 {
			before++
		}
		if t >= 2000 {
			during++
		}
	}
	if during < 5*before {
		t.Fatalf("flash crowd window saw %d arrivals vs %d in a pre-onset window of equal length; want a clear spike", during, before)
	}
}

func TestFlashCrowdIdentityBeforeOnset(t *testing.T) {
	po, _ := NewPoisson(1)
	fc, _ := NewFlashCrowd(1e9, 20, 300, po)
	inner := po.New(8)
	warped := fc.New(8)
	for i := 0; i < 2000; i++ {
		a, b := inner.Next(), warped.Next()
		if math.Abs(a-b) > 1e-7*math.Max(1, a) {
			t.Fatalf("arrival %d: warped %v deviates from inner %v before onset", i, b, a)
		}
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	for _, s := range []string{
		"interval:60",
		"poisson:0.5",
		"pareto-onoff:2:30:90:1.5",
		"diurnal:86400:0.8:poisson:0.5",
		"flashcrowd:3600:20:600:pareto-onoff:2:30:90:1.5",
		"diurnal:86400:0.5:flashcrowd:3600:20:600:poisson:2",
	} {
		spec, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s, err)
		}
		if got := spec.String(); got != s {
			t.Errorf("ParseSpec(%q).String() = %q", s, got)
		}
		reparsed, err := ParseSpec(spec.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", spec.String(), err)
		}
		if reparsed != spec {
			t.Errorf("reparse of %q is not identical: %#v vs %#v", s, reparsed, spec)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, s := range []string{
		"",
		"nope:1",
		"interval",
		"interval:0",
		"interval:-5",
		"interval:1:2",
		"poisson:abc",
		"poisson:inf",
		"pareto-onoff:2:30:90",
		"pareto-onoff:2:30:90:1",
		"pareto-onoff:2:0:90:1.5",
		"diurnal:3600:0.5",
		"diurnal:3600:1.5:poisson:1",
		"diurnal:0:0.5:poisson:1",
		"flashcrowd:100:5:0:poisson:1",
		"flashcrowd:-1:5:60:poisson:1",
		"flashcrowd:100:5:60:nope:1",
		"replay:",
		"replay:/nonexistent/stream/file",
	} {
		if spec, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) = %v, want error", s, spec)
		} else if !strings.HasPrefix(err.Error(), "workload:") {
			t.Errorf("ParseSpec(%q) error %q not workload-prefixed", s, err)
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewInterval(math.Inf(1)); err == nil {
		t.Error("NewInterval(+Inf) accepted")
	}
	if _, err := NewPoisson(math.NaN()); err == nil {
		t.Error("NewPoisson(NaN) accepted")
	}
	if _, err := NewParetoOnOff(1, 1, -1, 1.5); err == nil {
		t.Error("NewParetoOnOff with negative OffMean accepted")
	}
	if _, err := NewDiurnal(10, 0.5, nil); err == nil {
		t.Error("NewDiurnal(nil inner) accepted")
	}
	if _, err := NewFlashCrowd(10, 5, 60, nil); err == nil {
		t.Error("NewFlashCrowd(nil inner) accepted")
	}
	if _, err := NewOutages(0, 0.5, 60); err == nil {
		t.Error("NewOutages(0 zones) accepted")
	}
	if _, err := NewOutages(4, 1.5, 60); err == nil {
		t.Error("NewOutages(p > 1) accepted")
	}
	if _, err := NewOutages(4, 0.5, 0); err == nil {
		t.Error("NewOutages(0 duration) accepted")
	}
}

func TestSamplingDoesNotAllocate(t *testing.T) {
	for name, spec := range builtinSpecs(t) {
		a := spec.New(99)
		a.Next() // warm up
		if allocs := testing.AllocsPerRun(1000, func() { a.Next() }); allocs != 0 {
			t.Errorf("%s: Next allocates %v/op, want 0", name, allocs)
		}
	}
	rec, err := Record(builtinSpecs(t)["poisson"], 99, 10000)
	if err != nil {
		t.Fatal(err)
	}
	a := ReplayStream(rec, "mem").New(0)
	if allocs := testing.AllocsPerRun(1000, func() { a.Next() }); allocs != 0 {
		t.Errorf("replay: Next allocates %v/op, want 0", allocs)
	}
}

func TestArrivalSeedDecorrelates(t *testing.T) {
	if ArrivalSeed(1) == 1 || ArrivalSeed(1) == ArrivalSeed(2) {
		t.Fatalf("ArrivalSeed must derive a distinct stream: %v %v", ArrivalSeed(1), ArrivalSeed(2))
	}
}
