package workload

import (
	"fmt"
	"math"

	"github.com/szte-dcs/tokenaccount/internal/rng"
	"github.com/szte-dcs/tokenaccount/netmodel"
	"github.com/szte-dcs/tokenaccount/protocol"
	"github.com/szte-dcs/tokenaccount/trace"
)

// Outages is the availability-side generator: correlated regional outages.
// Time is cut into consecutive windows of Duration seconds, and in each
// window each of Zones regions independently suffers a full-window outage
// with probability P — a power cut, a backbone failure, a cloud region going
// dark. Every node of an affected region drops at the window start and
// rejoins at its end, so churn is correlated exactly the way the paper's
// per-user smartphone trace can never produce.
//
// Nodes map to regions through the same hash as the netmodel Zones model
// (netmodel.Zones{K: Zones}.Zone), so running "-network zones:K:..." with
// "-scenario outage:K:..." makes network topology and failure domains
// coincide: a zone that goes dark is precisely a zone behind slow inter-zone
// links, and under the sharded runtime it is also a shard boundary.
type Outages struct {
	// Zones is the number of failure regions (≥ 1).
	Zones int
	// P is the per-region, per-window outage probability in [0, 1].
	P float64
	// Duration is the window (and therefore outage) length in seconds.
	Duration float64
}

// NewOutages validates the parameters and returns the generator.
func NewOutages(zones int, p, duration float64) (Outages, error) {
	switch {
	case zones < 1:
		return Outages{}, fmt.Errorf("workload: outage zones = %d, need ≥ 1", zones)
	case p < 0 || p > 1 || math.IsNaN(p):
		return Outages{}, fmt.Errorf("workload: outage probability = %g outside [0, 1]", p)
	case !(duration > 0) || math.IsInf(duration, 1):
		return Outages{}, fmt.Errorf("workload: outage duration = %g, need > 0 and finite", duration)
	}
	return Outages{Zones: zones, P: p, Duration: duration}, nil
}

// String renders the generator in its parseable scenario form.
func (o Outages) String() string {
	return fmt.Sprintf("outage:%d:%g:%g", o.Zones, o.P, o.Duration)
}

// Trace realizes the outage process for n nodes over total seconds as an
// ordinary availability trace, so the runtime's host lifecycle path consumes
// it unchanged. The draw sequence is per-zone (one Bernoulli per window from
// a zone-private stream derived from seed), so the realization for a fixed
// seed is independent of n and of which nodes the hash places in each zone.
func (o Outages) Trace(n int, total float64, seed uint64) (*trace.Trace, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: outage trace needs ≥ 1 node, got %d", n)
	}
	if !(total > 0) || math.IsInf(total, 1) {
		return nil, fmt.Errorf("workload: outage trace duration = %g, need > 0 and finite", total)
	}
	windows := int(math.Ceil(total / o.Duration))
	base := rng.Derive(seed, outageStream)

	// Realize each zone's online intervals once (complement of its outage
	// windows, with adjacent up-windows merged), then stamp them onto the
	// zone's nodes.
	zoneIntervals := make([][]trace.Interval, o.Zones)
	for z := 0; z < o.Zones; z++ {
		src := rng.New(rng.Derive(base, uint64(z)))
		var ivs []trace.Interval
		up := 0.0 // start of the current online stretch, valid while inUp
		inUp := true
		for w := 0; w < windows; w++ {
			t := float64(w) * o.Duration
			if src.Float64() < o.P {
				if inUp && t > up {
					ivs = append(ivs, trace.Interval{Start: up, End: t})
				}
				inUp = false
			} else if !inUp {
				up = t
				inUp = true
			}
		}
		if inUp && total > up {
			ivs = append(ivs, trace.Interval{Start: up, End: total})
		}
		zoneIntervals[z] = ivs
	}

	zones := netmodel.Zones{K: o.Zones}
	tr := &trace.Trace{Duration: total, Segments: make([]trace.Segment, n)}
	for i := 0; i < n; i++ {
		src := zoneIntervals[zones.Zone(protocol.NodeID(i))]
		if len(src) == 0 {
			continue
		}
		tr.Segments[i].Intervals = append([]trace.Interval(nil), src...)
	}
	return tr, nil
}
