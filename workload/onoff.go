package workload

import (
	"fmt"
	"math"

	"github.com/szte-dcs/tokenaccount/internal/rng"
)

// ParetoOnOff is the classic self-similar traffic source: the process
// alternates between ON periods, during which arrivals occur as a Poisson
// process at Rate, and silent OFF periods. Both period lengths are
// Pareto-distributed with shape Alpha and means OnMean / OffMean; for
// 1 < Alpha < 2 the period distribution is heavy-tailed with infinite
// variance, and the superposition of such sources exhibits the long-range
// dependence measured in real network traffic (Willinger et al.) — bursts at
// every time scale, unlike the exponentially-mixing Poisson drip.
//
// The process starts in an ON period at time zero. Exponential arrival
// credit left over when an ON period ends carries into the next ON period
// (memorylessness makes this statistically identical to resampling while
// keeping the sampler allocation-free and single-pass).
type ParetoOnOff struct {
	// Rate is the arrival rate during ON periods, in arrivals per second.
	Rate float64
	// OnMean and OffMean are the mean ON and OFF period lengths in seconds.
	// OffMean = 0 degenerates to a plain Poisson process at Rate.
	OnMean, OffMean float64
	// Alpha is the Pareto shape of both period distributions; Alpha > 1 is
	// required for the means to exist, and 1 < Alpha < 2 gives the
	// heavy-tailed, self-similar regime.
	Alpha float64
}

// NewParetoOnOff validates the parameters and returns the spec.
func NewParetoOnOff(rate, onMean, offMean, alpha float64) (ParetoOnOff, error) {
	switch {
	case !(rate > 0) || math.IsInf(rate, 1):
		return ParetoOnOff{}, fmt.Errorf("workload: pareto-onoff rate = %g, need > 0 and finite", rate)
	case !(onMean > 0) || math.IsInf(onMean, 1):
		return ParetoOnOff{}, fmt.Errorf("workload: pareto-onoff on-mean = %g, need > 0 and finite", onMean)
	case offMean < 0 || math.IsNaN(offMean) || math.IsInf(offMean, 1):
		return ParetoOnOff{}, fmt.Errorf("workload: pareto-onoff off-mean = %g, need ≥ 0 and finite", offMean)
	case !(alpha > 1) || math.IsInf(alpha, 1):
		return ParetoOnOff{}, fmt.Errorf("workload: pareto-onoff alpha = %g, need > 1 and finite (the Pareto mean must exist)", alpha)
	}
	return ParetoOnOff{Rate: rate, OnMean: onMean, OffMean: offMean, Alpha: alpha}, nil
}

// New implements Spec.
func (p ParetoOnOff) New(seed uint64) Arrivals {
	// A Pareto(xm, α) variable has mean α·xm/(α−1), so the scale parameter
	// realizing a target mean is mean·(α−1)/α.
	scale := (p.Alpha - 1) / p.Alpha
	a := &onoffArrivals{
		src:      rng.New(rng.Derive(seed, onoffStream)),
		mean:     1 / p.Rate,
		onXm:     p.OnMean * scale,
		offXm:    p.OffMean * scale,
		invAlpha: 1 / p.Alpha,
	}
	a.onEnd = a.pareto(a.onXm) // the first ON period starts at time zero
	return a
}

// String renders the spec in its parseable form.
func (p ParetoOnOff) String() string {
	return fmt.Sprintf("pareto-onoff:%g:%g:%g:%g", p.Rate, p.OnMean, p.OffMean, p.Alpha)
}

type onoffArrivals struct {
	src *rng.Source
	// cur is the last arrival time (the active-time cursor), onEnd the end
	// of the current ON period.
	cur, onEnd float64
	mean       float64 // mean inter-arrival gap during ON
	onXm       float64 // Pareto scale of ON periods
	offXm      float64 // Pareto scale of OFF periods
	invAlpha   float64 // 1/α
}

// pareto draws a Pareto(xm, α) variable by inverse transform: xm·U^(−1/α)
// with U in (0, 1]. xm = 0 (the OffMean = 0 degenerate case) yields 0.
func (a *onoffArrivals) pareto(xm float64) float64 {
	if xm == 0 {
		return 0
	}
	u := 1 - a.src.Float64() // in (0, 1]
	return xm * math.Pow(u, -a.invAlpha)
}

func (a *onoffArrivals) Next() float64 {
	gap := a.src.ExpFloat64() * a.mean
	for a.cur+gap > a.onEnd {
		// The gap outlives the current ON period: spend what fits, skip the
		// OFF period, and carry the remainder into the next ON period.
		gap -= a.onEnd - a.cur
		off := a.pareto(a.offXm)
		on := a.pareto(a.onXm)
		a.cur = a.onEnd + off
		a.onEnd = a.cur + on
	}
	a.cur += gap
	return a.cur
}
