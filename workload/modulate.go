package workload

import (
	"fmt"
	"math"
)

// The modulators reshape any inner arrival process by a deterministic
// rate-multiplier profile m(t) ≥ 0: the inner process runs in "operational
// time" τ, and each inner arrival at τ is mapped to the run time t solving
// M(t) = τ, where M(t) = ∫₀ᵗ m(s) ds is the cumulative profile. Where the
// profile runs above 1 the arrivals compress together (higher instantaneous
// rate); where it dips below 1 they stretch apart. Because the warp adds no
// randomness of its own, modulated processes inherit the inner process's
// determinism, and modulators compose with every Spec — a diurnal cycle over
// Pareto bursts, a flash crowd on top of a diurnal Poisson, and so on.
//
// M has a closed form for both built-in profiles; its inverse is computed by
// a safeguarded bisection that allocates nothing and converges to a relative
// tolerance of ~1e-12, so replayed streams reproduce the warped times
// bit-for-bit.

// Diurnal modulates an inner arrival process with a sinusoidal day/night
// profile m(t) = 1 + Amplitude·sin(2πt/Period): traffic peaks a quarter
// period in and bottoms out three quarters in, with the mean rate over a
// full period equal to the inner process's rate. Amplitude 1 silences the
// trough completely.
type Diurnal struct {
	// Period is the cycle length in seconds (86400 for a daily cycle).
	Period float64
	// Amplitude is the relative swing in [0, 1].
	Amplitude float64
	// Inner is the arrival process being modulated.
	Inner Spec
}

// NewDiurnal validates the parameters and returns the spec.
func NewDiurnal(period, amplitude float64, inner Spec) (Diurnal, error) {
	switch {
	case !(period > 0) || math.IsInf(period, 1):
		return Diurnal{}, fmt.Errorf("workload: diurnal period = %g, need > 0 and finite", period)
	case amplitude < 0 || amplitude > 1 || math.IsNaN(amplitude):
		return Diurnal{}, fmt.Errorf("workload: diurnal amplitude = %g outside [0, 1]", amplitude)
	case inner == nil:
		return Diurnal{}, fmt.Errorf("workload: diurnal inner process is nil")
	}
	return Diurnal{Period: period, Amplitude: amplitude, Inner: inner}, nil
}

// New implements Spec.
func (d Diurnal) New(seed uint64) Arrivals {
	return &warpedArrivals{inner: d.Inner.New(seed), mod: diurnalProfile{d.Period, d.Amplitude}}
}

// String renders the spec in its parseable form.
func (d Diurnal) String() string {
	return fmt.Sprintf("diurnal:%g:%g:%s", d.Period, d.Amplitude, d.Inner)
}

// diurnalProfile is the sinusoidal modulator. Its cumulative form is
// M(t) = t + A·P/(2π)·(1 − cos(2πt/P)).
type diurnalProfile struct {
	period, amplitude float64
}

func (p diurnalProfile) cum(t float64) float64 {
	w := 2 * math.Pi / p.period
	return t + p.amplitude/w*(1-math.Cos(w*t))
}

// FlashCrowd modulates an inner arrival process with a sudden rate spike: the
// profile is 1 until time At, jumps to Peak, and relaxes back to 1
// exponentially with time constant Decay — the canonical breaking-news /
// release-day traffic shape. Peak may be below 1 to model a correlated lull
// instead.
type FlashCrowd struct {
	// At is the onset time of the spike in run seconds.
	At float64
	// Peak is the rate multiplier at onset (≥ 0; > 1 for a crowd).
	Peak float64
	// Decay is the exponential relaxation time constant in seconds.
	Decay float64
	// Inner is the arrival process being modulated.
	Inner Spec
}

// NewFlashCrowd validates the parameters and returns the spec.
func NewFlashCrowd(at, peak, decay float64, inner Spec) (FlashCrowd, error) {
	switch {
	case at < 0 || math.IsNaN(at) || math.IsInf(at, 1):
		return FlashCrowd{}, fmt.Errorf("workload: flashcrowd onset = %g, need ≥ 0 and finite", at)
	case peak < 0 || math.IsNaN(peak) || math.IsInf(peak, 1):
		return FlashCrowd{}, fmt.Errorf("workload: flashcrowd peak = %g, need ≥ 0 and finite", peak)
	case !(decay > 0) || math.IsInf(decay, 1):
		return FlashCrowd{}, fmt.Errorf("workload: flashcrowd decay = %g, need > 0 and finite", decay)
	case inner == nil:
		return FlashCrowd{}, fmt.Errorf("workload: flashcrowd inner process is nil")
	}
	return FlashCrowd{At: at, Peak: peak, Decay: decay, Inner: inner}, nil
}

// New implements Spec.
func (f FlashCrowd) New(seed uint64) Arrivals {
	return &warpedArrivals{inner: f.Inner.New(seed), mod: flashProfile{f.At, f.Peak, f.Decay}}
}

// String renders the spec in its parseable form.
func (f FlashCrowd) String() string {
	return fmt.Sprintf("flashcrowd:%g:%g:%g:%s", f.At, f.Peak, f.Decay, f.Inner)
}

// flashProfile is the spike modulator. Its cumulative form is M(t) = t for
// t ≤ At and M(t) = t + (Peak−1)·Decay·(1 − e^(−(t−At)/Decay)) beyond.
type flashProfile struct {
	at, peak, decay float64
}

func (p flashProfile) cum(t float64) float64 {
	if t <= p.at {
		return t
	}
	return t + (p.peak-1)*p.decay*(1-math.Exp(-(t-p.at)/p.decay))
}

// profile is the cumulative rate-multiplier of a modulator: nondecreasing,
// with cum(0) = 0 and cum(t) − t bounded (both built-in profiles have mean
// multiplier 1 up to a bounded excursion, so the doubling search in invert
// always terminates).
type profile interface {
	cum(t float64) float64
}

// warpedArrivals maps each inner arrival from operational to run time by
// inverting the cumulative profile.
type warpedArrivals struct {
	inner Arrivals
	mod   profile
	t     float64 // last returned run time: the inversion's lower bracket
}

func (a *warpedArrivals) Next() float64 {
	tau := a.inner.Next()
	if math.IsInf(tau, 1) || math.IsNaN(tau) {
		return math.Inf(1)
	}
	a.t = invert(a.mod, tau, a.t)
	return a.t
}

// invert solves cum(t) = tau for t ≥ lo by bracketed bisection. cum is
// nondecreasing and cum(lo) ≤ tau (lo is the previous solution), so doubling
// the step from lo brackets the root; bisection then converges to ~1e-12
// relative tolerance, deterministically and without allocating.
func invert(m profile, tau, lo float64) float64 {
	hi := lo + 1
	for step := 1.0; m.cum(hi) < tau; step *= 2 {
		hi += step
	}
	for i := 0; i < 200; i++ {
		mid := lo + (hi-lo)/2
		if mid <= lo || mid >= hi {
			break // the bracket collapsed to adjacent floats
		}
		if m.cum(mid) < tau {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo <= 1e-12*math.Max(1, hi) {
			break
		}
	}
	return hi
}
