package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// The replayable stream format is a compact line-oriented text file: a
// versioned header comment, metadata comments recording how the stream was
// produced, and one "a,<time>" line per arrival with %g-formatted times (Go's
// %g emits the shortest decimal that parses back to the identical float64, so
// a write/read round trip is bit-exact):
//
//	# workload-stream v1
//	# spec=flashcrowd:3600:20:600:poisson:0.5
//	# seed=42
//	# duration=14400
//	a,1.9872136
//	a,3.5701214
//	...
//
// A recorded stream replayed through "replay:<path>" therefore reproduces the
// original run's injections bit-identically even after the generator code
// changes, which keeps sweep rows comparable across engine versions. Outage
// realizations need no format of their own: Outages.Trace emits an ordinary
// trace.Trace, recorded and replayed through the existing trace CSV files.

// streamMagic is the first line of every stream file.
const streamMagic = "# workload-stream v1"

// maxStreamArrivals bounds Record against a mis-parameterized spec whose
// arrivals never pass the requested duration (2^27 ≈ 134M arrivals ≈ 2 GiB of
// times — far past any practical experiment).
const maxStreamArrivals = 1 << 27

// Stream is a recorded arrival-process realization: the sampled times plus
// the provenance needed to reproduce or audit them.
type Stream struct {
	// Spec is the parseable form of the generator that produced the stream
	// (empty for externally produced files).
	Spec string
	// Seed is the sampler seed the stream was recorded with.
	Seed uint64
	// Duration is the horizon the stream covers: every arrival ≤ Duration
	// that the generator produces is present.
	Duration float64
	// Times are the arrival times, non-decreasing.
	Times []float64
}

// Record samples spec with the given seed and captures every arrival up to
// and including duration.
func Record(spec Spec, seed uint64, duration float64) (*Stream, error) {
	if !(duration > 0) || math.IsInf(duration, 1) {
		return nil, fmt.Errorf("workload: record duration = %g, need > 0 and finite", duration)
	}
	s := &Stream{Spec: spec.String(), Seed: seed, Duration: duration}
	a := spec.New(seed)
	for {
		t := a.Next()
		if t > duration || math.IsNaN(t) {
			return s, nil
		}
		if len(s.Times) >= maxStreamArrivals {
			return nil, fmt.Errorf("workload: recording %q produced over %d arrivals within %g s; the spec's rate is far past any practical experiment",
				s.Spec, maxStreamArrivals, duration)
		}
		s.Times = append(s.Times, t)
	}
}

// Write emits the stream in the replayable text format.
func (s *Stream) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, streamMagic)
	if s.Spec != "" {
		fmt.Fprintf(bw, "# spec=%s\n", s.Spec)
	}
	fmt.Fprintf(bw, "# seed=%d\n", s.Seed)
	fmt.Fprintf(bw, "# duration=%g\n", s.Duration)
	for _, t := range s.Times {
		if _, err := fmt.Fprintf(bw, "a,%g\n", t); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadStream parses a stream previously emitted by Write. Malformed lines,
// negative or decreasing times, and a missing magic header are rejected with
// line-numbered errors.
func ReadStream(r io.Reader) (*Stream, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	s := &Stream{}
	sawMagic := false
	prev := 0.0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case !sawMagic:
			if line != streamMagic {
				return nil, fmt.Errorf("workload: line %d: not a workload stream (want %q header)", lineNo, streamMagic)
			}
			sawMagic = true
		case strings.HasPrefix(line, "#"):
			meta := strings.TrimSpace(strings.TrimPrefix(line, "#"))
			key, val, ok := strings.Cut(meta, "=")
			if !ok {
				continue // free-form comment
			}
			val = strings.TrimSpace(val)
			switch strings.TrimSpace(key) {
			case "spec":
				s.Spec = val
			case "seed":
				seed, err := strconv.ParseUint(val, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("workload: line %d: bad seed: %v", lineNo, err)
				}
				s.Seed = seed
			case "duration":
				d, err := strconv.ParseFloat(val, 64)
				if err != nil || !(d > 0) || math.IsInf(d, 1) {
					return nil, fmt.Errorf("workload: line %d: bad duration %q, need > 0 and finite", lineNo, val)
				}
				s.Duration = d
			}
		case strings.HasPrefix(line, "a,"):
			t, err := strconv.ParseFloat(line[len("a,"):], 64)
			if err != nil {
				return nil, fmt.Errorf("workload: line %d: bad arrival time: %v", lineNo, err)
			}
			if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
				return nil, fmt.Errorf("workload: line %d: arrival time %g, need ≥ 0 and finite", lineNo, t)
			}
			if t < prev {
				return nil, fmt.Errorf("workload: line %d: arrival time %g decreases below %g; streams must be non-decreasing", lineNo, t, prev)
			}
			prev = t
			s.Times = append(s.Times, t)
		default:
			return nil, fmt.Errorf("workload: line %d: unrecognized record %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading stream: %w", err)
	}
	if !sawMagic {
		return nil, fmt.Errorf("workload: empty input is not a workload stream (want %q header)", streamMagic)
	}
	if s.Duration == 0 {
		if n := len(s.Times); n > 0 {
			s.Duration = s.Times[n-1]
		}
	}
	return s, nil
}

// Replay is the Spec wrapper around a recorded stream: New ignores the seed
// (the randomness was spent at record time) and replays the times verbatim,
// returning +Inf once the stream is exhausted.
type Replay struct {
	// Path is the file the stream came from, used for the spec form; streams
	// built in memory carry a caller-chosen label here.
	Path   string
	stream *Stream
}

// NewReplay loads a recorded stream from path and wraps it for replay.
func NewReplay(path string) (Replay, error) {
	f, err := os.Open(path)
	if err != nil {
		return Replay{}, fmt.Errorf("workload: replay: %w", err)
	}
	defer f.Close()
	s, err := ReadStream(f)
	if err != nil {
		return Replay{}, fmt.Errorf("workload: replay %s: %w", path, err)
	}
	return Replay{Path: path, stream: s}, nil
}

// ReplayStream wraps an in-memory stream for replay; label stands in for the
// file path in the spec form.
func ReplayStream(s *Stream, label string) Replay {
	return Replay{Path: label, stream: s}
}

// Stream returns the wrapped recorded stream.
func (r Replay) Stream() *Stream { return r.stream }

// New implements Spec. The seed is ignored: a replayed stream is the same
// realization under every seed, which is the point.
func (r Replay) New(uint64) Arrivals {
	return &replayArrivals{times: r.stream.Times}
}

// String renders the spec in its parseable form.
func (r Replay) String() string { return "replay:" + r.Path }

type replayArrivals struct {
	times []float64
	i     int
}

func (a *replayArrivals) Next() float64 {
	if a.i >= len(a.times) {
		return math.Inf(1)
	}
	t := a.times[a.i]
	a.i++
	return t
}
