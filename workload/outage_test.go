package workload

import (
	"math"
	"testing"

	"github.com/szte-dcs/tokenaccount/netmodel"
	"github.com/szte-dcs/tokenaccount/protocol"
)

func TestOutageTraceDeterministic(t *testing.T) {
	o, err := NewOutages(4, 0.2, 300)
	if err != nil {
		t.Fatal(err)
	}
	a, err := o.Trace(50, 86400, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := o.Trace(50, 86400, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Segments {
		ai, bi := a.Segments[i].Intervals, b.Segments[i].Intervals
		if len(ai) != len(bi) {
			t.Fatalf("node %d: %d vs %d intervals across identical seeds", i, len(ai), len(bi))
		}
		for j := range ai {
			if ai[j] != bi[j] {
				t.Fatalf("node %d interval %d differs: %v vs %v", i, j, ai[j], bi[j])
			}
		}
	}
	c, err := o.Trace(50, 86400, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Segments {
		if len(a.Segments[i].Intervals) != len(c.Segments[i].Intervals) {
			same = false
			break
		}
		for j, iv := range a.Segments[i].Intervals {
			if iv != c.Segments[i].Intervals[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical outage traces")
	}
}

func TestOutageZoneCorrelation(t *testing.T) {
	o, _ := NewOutages(3, 0.3, 600)
	const n, total = 200, 4 * 86400.0
	tr, err := o.Trace(n, total, 5)
	if err != nil {
		t.Fatal(err)
	}
	zones := netmodel.Zones{K: 3}
	// Every node must match its zone's realization exactly: probing any time
	// point, two nodes of the same zone agree, and the trace honours the
	// netmodel hash so "-network zones:3:..." failure domains coincide.
	rep := map[int]int{} // zone -> representative node
	for i := 0; i < n; i++ {
		z := zones.Zone(protocol.NodeID(i))
		r, ok := rep[z]
		if !ok {
			rep[z] = i
			continue
		}
		for probe := 0.0; probe < total; probe += 97 {
			if tr.Online(i, probe) != tr.Online(r, probe) {
				t.Fatalf("nodes %d and %d share zone %d but disagree at t=%v", i, r, z, probe)
			}
		}
	}
	if len(rep) != 3 {
		t.Fatalf("hash placed %d zones among %d nodes, want 3", len(rep), n)
	}
}

func TestOutageDowntimeFraction(t *testing.T) {
	// With P = 0.25 each zone is down ~25% of the time.
	o, _ := NewOutages(8, 0.25, 500)
	tr, err := o.Trace(8, 2e6, 11)
	if err != nil {
		t.Fatal(err)
	}
	down, probes := 0, 0
	for i := 0; i < 8; i++ {
		for probe := 1.0; probe < 2e6; probe += 211 {
			probes++
			if !tr.Online(i, probe) {
				down++
			}
		}
	}
	frac := float64(down) / float64(probes)
	if math.Abs(frac-0.25) > 0.05 {
		t.Fatalf("downtime fraction %v, want ≈ 0.25", frac)
	}
}

func TestOutageZeroAndFullProbability(t *testing.T) {
	always, _ := NewOutages(4, 0, 300)
	tr, err := always.Trace(10, 10000, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got := tr.Segments[i].OnlineTime(); got != 10000 {
			t.Fatalf("node %d online %v of 10000 with P=0", i, got)
		}
	}
	never, _ := NewOutages(4, 1, 300)
	tr, err = never.Trace(10, 10000, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got := tr.Segments[i].OnlineTime(); got != 0 {
			t.Fatalf("node %d online %v of 10000 with P=1", i, got)
		}
	}
}

func TestParseOutages(t *testing.T) {
	o, err := ParseOutages([]string{"4", "0.1", "900"})
	if err != nil {
		t.Fatal(err)
	}
	if o != (Outages{Zones: 4, P: 0.1, Duration: 900}) {
		t.Fatalf("ParseOutages = %+v", o)
	}
	if got := o.String(); got != "outage:4:0.1:900" {
		t.Fatalf("String() = %q", got)
	}
	for _, args := range [][]string{
		{},
		{"4", "0.1"},
		{"x", "0.1", "900"},
		{"4", "x", "900"},
		{"4", "0.1", "x"},
		{"0", "0.1", "900"},
		{"4", "2", "900"},
	} {
		if _, err := ParseOutages(args); err == nil {
			t.Errorf("ParseOutages(%v) accepted", args)
		}
	}
}
